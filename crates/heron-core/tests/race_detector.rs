//! Sim-TSan integration: a clean Heron run (including multi-partition
//! remote reads and crash/recovery state transfer) must report **zero**
//! races or protocol lints, while a deliberately broken dual-versioning
//! guard must trip the victim lint deterministically.

use bytes::Bytes;
use heron_core::{
    Execution, HeronCluster, HeronConfig, LocalReader, ObjectId, PartitionId, Placement, ReadSet,
    StateMachine, StorageKind,
};
use rdma_sim::{Fabric, LatencyModel, RaceKind};
use std::sync::Arc;
use std::time::Duration;

/// Counters spread round-robin over partitions. Each request names two
/// objects and a delta; both are incremented. When the objects live on
/// different partitions the request is multi-partition: in `AllInvolved`
/// mode each partition remote-reads the other's object, exercising the
/// dual-version slot audit.
struct Counters {
    partitions: u16,
    objects: u64,
}

fn enc(a: u64, b: u64, delta: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(24);
    v.extend_from_slice(&a.to_le_bytes());
    v.extend_from_slice(&b.to_le_bytes());
    v.extend_from_slice(&delta.to_le_bytes());
    v
}

fn arg(req: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(req[i * 8..(i + 1) * 8].try_into().unwrap())
}

impl Counters {
    fn partition_of(&self, oid: u64) -> PartitionId {
        PartitionId((oid % self.partitions as u64) as u16)
    }
}

impl StateMachine for Counters {
    fn placement(&self, oid: ObjectId) -> Placement {
        Placement::Partition(self.partition_of(oid.0))
    }

    fn storage_kind(&self, _oid: ObjectId) -> StorageKind {
        StorageKind::Serialized
    }

    fn destinations(&self, req: &[u8]) -> Vec<PartitionId> {
        let mut d = vec![
            self.partition_of(arg(req, 0)),
            self.partition_of(arg(req, 1)),
        ];
        d.sort_unstable();
        d.dedup();
        d
    }

    fn read_set(&self, req: &[u8]) -> Vec<ObjectId> {
        let mut s = vec![ObjectId(arg(req, 0)), ObjectId(arg(req, 1))];
        s.sort_unstable();
        s.dedup();
        s
    }

    fn execute(
        &self,
        partition: PartitionId,
        req: &[u8],
        reads: &ReadSet,
        _local: &dyn LocalReader,
    ) -> Execution {
        let delta = arg(req, 2);
        let mut writes = Vec::new();
        for oid in [arg(req, 0), arg(req, 1)] {
            if self.partition_of(oid) != partition {
                continue;
            }
            let cur = u64::from_le_bytes(
                reads.get(ObjectId(oid)).expect("read present")[..8]
                    .try_into()
                    .unwrap(),
            );
            let val = Bytes::copy_from_slice(&(cur + delta).to_le_bytes());
            // Same object twice: last write wins, value bumped once.
            writes.retain(|(o, _)| *o != ObjectId(oid));
            writes.push((ObjectId(oid), val));
        }
        Execution {
            writes,
            response: Bytes::from_static(&[1]),
            compute: Duration::from_micros(2),
        }
    }

    fn bootstrap(&self, partition: PartitionId) -> Vec<(ObjectId, Bytes)> {
        (0..self.objects)
            .filter(|o| self.partition_of(*o) == partition)
            .map(|o| (ObjectId(o), Bytes::copy_from_slice(&0u64.to_le_bytes())))
            .collect()
    }
}

fn build(seed: u64, cfg: HeronConfig, objects: u64) -> (sim::Simulation, Fabric, HeronCluster) {
    let simulation = sim::Simulation::new(seed);
    let fabric = Fabric::new(LatencyModel::connectx4());
    let machine = Arc::new(Counters {
        partitions: cfg.partitions as u16,
        objects,
    });
    let cluster = HeronCluster::build(&fabric, cfg, machine);
    cluster.spawn(&simulation);
    (simulation, fabric, cluster)
}

#[test]
fn clean_run_with_crash_recovery_reports_no_races() {
    let cfg = HeronConfig::new(2, 3).with_race_detector(true);
    let (simulation, fabric, cluster) = build(31, cfg, 6);
    let c2 = cluster.clone();
    let mut client = cluster.client("c");
    let victim = cluster.replica_node(PartitionId(0), 2).id();
    simulation.spawn("client", move || {
        // Multi-partition traffic: object i and i+1 always straddle the
        // two partitions, so every request remote-reads a slot.
        for i in 0..15u64 {
            client.execute(&enc(i % 6, (i + 1) % 6, 1));
        }
        // Crash one replica, keep going far enough to overwrite its log,
        // then recover it so it runs the state-transfer protocol under
        // the detector (staging ring, applied watermark, service applies).
        fabric.crash(victim);
        for i in 0..30u64 {
            client.execute(&enc(i % 6, (i + 1) % 6, 1));
        }
        fabric.recover(victim);
        for i in 0..30u64 {
            client.execute(&enc(i % 6, (i + 1) % 6, 1));
        }
        sim::sleep(Duration::from_millis(50));
        sim::stop();
    });
    simulation.run().unwrap();
    let reports = c2.race_reports();
    assert!(
        reports.is_empty(),
        "clean run produced {} race report(s); first:\n{}",
        reports.len(),
        reports[0]
    );
    let det = c2.race_detector().expect("detector enabled");
    let stats = det.stats();
    assert!(
        stats.remote_reads_checked > 0,
        "no remote reads were checked — the detector saw no traffic"
    );
}

#[test]
fn detector_is_off_by_default() {
    let (simulation, _f, cluster) = build(32, HeronConfig::new(2, 3), 4);
    let mut client = cluster.client("c");
    simulation.spawn("client", move || {
        client.execute(&enc(0, 1, 1));
        sim::stop();
    });
    simulation.run().unwrap();
    assert!(cluster.race_detector().is_none());
    assert!(cluster.race_reports().is_empty());
}

#[test]
fn broken_dual_version_guard_trips_victim_lint_deterministically() {
    // Each entry pins the report down to the exact virtual times of both
    // access sites — the same seed must reproduce the race to the
    // nanosecond.
    fn run_once(seed: u64) -> Vec<(String, String, (u64, u64), u64, u64, String)> {
        let cfg = HeronConfig::new(1, 3)
            .with_race_detector(true)
            .with_broken_dual_version_guard();
        let (simulation, _f, cluster) = build(seed, cfg, 2);
        let c2 = cluster.clone();
        let mut client = cluster.client("c");
        simulation.spawn("client", move || {
            // Bootstrap leaves both versions at ts 0, so the first write
            // per object is indistinguishable from a correct one; the
            // second write to the same object must overwrite the ACTIVE
            // version under the broken guard and trip the lint.
            for _ in 0..3u64 {
                client.execute(&enc(0, 0, 1));
            }
            sim::stop();
        });
        simulation.run().unwrap();
        let reports = c2.race_reports();
        assert!(
            !reports.is_empty(),
            "broken guard produced no reports — the selftest lint is dead"
        );
        assert!(
            reports.iter().all(|r| r.kind == RaceKind::ProtocolLint
                && r.detail.contains("dual-version victim guard violated")),
            "unexpected report kind: {}",
            reports[0]
        );
        reports
            .into_iter()
            .map(|r| {
                (
                    r.node_name,
                    r.region,
                    r.range,
                    r.first.time_ns,
                    r.second.time_ns,
                    r.detail,
                )
            })
            .collect()
    }
    assert_eq!(run_once(33), run_once(33), "reports must be deterministic");
}
