//! Deployment wiring: nodes, shared replica state, clients, and spawning.

use crate::app::StateMachine;
use crate::config::HeronConfig;
use crate::layout::{ReplicaLayout, CHUNK_HDR, COORD_ENTRY, SYNC_ENTRY};
use crate::metrics::Metrics;
use crate::replica::Executor;
use crate::server::Service;
use crate::store::VersionedStore;
use crate::types::{ObjectId, PartitionId};
use amcast::{GroupId, Mcast};
use parking_lot::Mutex;
use rdma_sim::{Addr, Fabric, Node, NodeId, QueuePair};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Progress accounting for an in-flight inbound state transfer.
#[derive(Debug, Default)]
pub(crate) struct TransferProgress {
    /// Next chunk stamp the service process expects. `0` = no transfer in
    /// progress (late chunks are ignored rather than applied against live
    /// executor state).
    pub expected: u64,
    /// Raw bytes applied so far in the current transfer.
    pub bytes: u64,
    /// Of which, bytes of `Native` objects (paid deserialization).
    pub native_bytes: u64,
    /// The responder snapshot bound this transfer is applying. Set by the
    /// first chunk; chunks from a different (racing) responder stream are
    /// ignored.
    pub stream_bound: Option<u64>,
}

/// State shared between a replica's executor and service processes.
pub(crate) struct ReplicaShared {
    pub cluster: Arc<ClusterInner>,
    pub partition: PartitionId,
    pub idx: usize,
    pub node: Node,
    pub store: VersionedStore,
    pub layout: ReplicaLayout,
    /// Update log: `(ts_raw, oid)` of every local write, used by state
    /// transfer to bound what must be synchronized (paper §III-A).
    pub log: Mutex<Vec<(u64, ObjectId)>>,
    /// `last_req` of Algorithm 1 (raw timestamp; set at delivery).
    pub last_req: AtomicU64,
    /// Raw timestamp of the last request whose write phase finished.
    pub completed_req: AtomicU64,
    /// Number of executors currently inside a write phase (at most 1
    /// serial; one per worker with a pool); state-transfer responders wait
    /// for it to reach zero so they snapshot request boundaries.
    pub in_write_phase: AtomicU64,
    /// Cached remote slot addresses: `(oid, node) → (addr, cap)` —
    /// the paper's `object_map`.
    pub object_map: Mutex<HashMap<(ObjectId, NodeId), (Addr, usize)>>,
    /// Address queries answered so far: `oid → nodes heard from` (the
    /// majority-wait of Algorithm 2, lines 11–13).
    pub addr_heard: Mutex<HashMap<ObjectId, Vec<NodeId>>>,
    /// Inbound transfer staging progress (owned by the service process).
    pub transfer: Mutex<TransferProgress>,
    /// Raw timestamp horizon the update log was last truncated at: entries
    /// `<= log_floor` are gone from `log`. State-transfer responders whose
    /// requester asks from below the floor must ship full state. Stays 0
    /// (and the log untruncated) without durability.
    pub log_floor: AtomicU64,
    /// The power-cycle generation the store contents reflect: raised by
    /// the executor once a cold restart has rebuilt the store. The
    /// checkpointer refuses to snapshot while this lags
    /// [`rdma_sim::Node::power_cycles`] — between the wipe and the
    /// rebuild, the watermarks look quiescent but the slots are zeros.
    pub restored_cycles: AtomicU64,
    /// The replica's durable namespace (`heron-p{p}r{i}`), when the
    /// deployment has a [`crate::DurabilityConfig`].
    pub disk: Option<sim::storage::Disk>,
    /// Debug trace of request handling: `(ts_raw, event)` where event is
    /// `e`xecuted, `s`kipped, or state-`t`ransferred-to.
    pub exec_trace: Mutex<Vec<(u64, char)>>,
    /// Cached queue pairs to other nodes.
    qps: Mutex<HashMap<NodeId, QueuePair>>,
}

impl ReplicaShared {
    pub(crate) fn qp(&self, target: &Node) -> QueuePair {
        self.qps
            .lock()
            .entry(target.id())
            .or_insert_with(|| self.node.connect(target))
            .clone()
    }

    /// The node hosting replica `q` of partition `h`.
    pub(crate) fn peer(&self, h: PartitionId, q: usize) -> Node {
        self.cluster.nodes[h.0 as usize][q].clone()
    }

    /// Rings the local doorbell: wakes anything blocked on this node's
    /// memory condition (the executor, typically).
    pub(crate) fn ring_doorbell(&self) {
        let v = self.node.local_read_word(self.layout.doorbell).unwrap_or(0);
        let _ = self
            .node
            .local_write_word(self.layout.doorbell, v.wrapping_add(1));
    }
}

pub(crate) struct ClientInfo {
    pub node: NodeId,
    pub resp_base: Addr,
}

pub(crate) struct ClusterInner {
    pub cfg: HeronConfig,
    pub fabric: Fabric,
    pub app: Arc<dyn StateMachine>,
    pub mcast: Mcast,
    pub nodes: Vec<Vec<Node>>,
    pub metrics: Arc<Metrics>,
    pub clients: Mutex<HashMap<u64, ClientInfo>>,
    pub client_counter: AtomicU64,
    /// The Sim-TSan race detector, when [`HeronConfig::race_detector`] is
    /// set (protocol lints consult it on their slow paths).
    pub detector: Option<rdma_sim::RaceDetector>,
    /// The trace handle, when [`HeronConfig::tracing`] is set. Populated at
    /// [`HeronCluster::spawn`] time (tracing is enabled on the simulation,
    /// which `build` never sees).
    pub tracer: Mutex<Option<sim::trace::Tracer>>,
}

/// A Heron deployment: partitioned, replicated state machine on shared
/// memory.
///
/// # Example
///
/// See the crate-level documentation and `examples/quickstart.rs`.
#[derive(Clone)]
pub struct HeronCluster {
    pub(crate) inner: Arc<ClusterInner>,
    pub(crate) replicas: Arc<Vec<Vec<Arc<ReplicaShared>>>>,
}

impl fmt::Debug for HeronCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeronCluster")
            .field("partitions", &self.inner.cfg.partitions)
            .field(
                "replicas_per_partition",
                &self.inner.cfg.replicas_per_partition,
            )
            .finish()
    }
}

impl HeronCluster {
    /// Builds a deployment on `fabric`: creates the replica nodes, lays out
    /// the ordering and coordination memory, and bootstraps every
    /// partition's store from the application.
    pub fn build(fabric: &Fabric, cfg: HeronConfig, app: Arc<dyn StateMachine>) -> Self {
        let nodes: Vec<Vec<Node>> = (0..cfg.partitions)
            .map(|p| {
                (0..cfg.replicas_per_partition)
                    .map(|i| fabric.add_node(format!("heron-p{p}r{i}")))
                    .collect()
            })
            .collect();
        let mcast = Mcast::build(fabric, nodes.clone(), cfg.mcast.clone());
        if let Some(dur) = &cfg.durability {
            // The ordering layer shares the storage device: each of its
            // replicas journals delivered entries to a per-replica WAL
            // that the checkpointer truncates behind the checkpoint
            // horizon.
            mcast.attach_wal(&dur.storage);
        }
        let detector = cfg.race_detector.then(|| fabric.enable_race_detector());
        if let Some(det) = &detector {
            // The ordering layer's rings are synchronization memory by
            // design: one-sided access to them IS the protocol.
            mcast.annotate_sync_regions(det);
        }
        let metrics = Arc::new(Metrics::new(cfg.partitions));
        if cfg.tracing {
            // The registry rides the same knob as tracing: histograms are
            // populated only when the run asked for observability.
            metrics.registry().enable();
        }
        let inner = Arc::new(ClusterInner {
            cfg,
            fabric: fabric.clone(),
            app,
            mcast,
            nodes,
            metrics,
            clients: Mutex::new(HashMap::new()),
            client_counter: AtomicU64::new(1),
            detector,
            tracer: Mutex::new(None),
        });
        let cfg = &inner.cfg;
        let n = cfg.replicas_per_partition;
        let mut replicas = Vec::with_capacity(cfg.partitions);
        for p in 0..cfg.partitions {
            let mut row = Vec::with_capacity(n);
            for i in 0..n {
                let node = inner.nodes[p][i].clone();
                // One coordination lane per pool worker: every writer
                // (partition, replica, lane) owns a private entry, so
                // concurrent workers never overwrite each other's barrier
                // state. Width 1 is byte-identical to the pre-pool layout.
                let layout = ReplicaLayout {
                    coord: node.alloc_bytes(cfg.partitions * n * cfg.executor_width * COORD_ENTRY),
                    coord_width: cfg.executor_width,
                    statesync: node.alloc_bytes(n * SYNC_ENTRY),
                    ring: node.alloc_bytes(cfg.transfer_slots * (CHUNK_HDR + cfg.transfer_chunk)),
                    applied: node.alloc_words(1),
                    doorbell: node.alloc_words(1),
                    progress: node.alloc_words(cfg.partitions * n),
                };
                if let Some(det) = &inner.detector {
                    use rdma_sim::RegionKind::{Staging, Sync};
                    let tag = |what: &str| format!("heron-p{p}r{i}:{what}");
                    det.annotate(
                        &node,
                        layout.coord,
                        cfg.partitions * n * cfg.executor_width * COORD_ENTRY,
                        Sync,
                        tag("coord"),
                    );
                    det.annotate(
                        &node,
                        layout.statesync,
                        n * SYNC_ENTRY,
                        Sync,
                        tag("statesync"),
                    );
                    det.annotate(
                        &node,
                        layout.ring,
                        cfg.transfer_slots * (CHUNK_HDR + cfg.transfer_chunk),
                        Staging,
                        tag("ring"),
                    );
                    det.annotate(&node, layout.applied, 8, Sync, tag("applied"));
                    det.annotate(&node, layout.doorbell, 8, Sync, tag("doorbell"));
                    det.annotate(
                        &node,
                        layout.progress,
                        cfg.partitions * n * 8,
                        Sync,
                        tag("progress"),
                    );
                }
                let mut store = VersionedStore::new(node.clone());
                if let Some(det) = &inner.detector {
                    store.instrument(det.clone(), cfg.break_dual_version_guard);
                }
                for (oid, value) in inner.app.bootstrap(PartitionId(p as u16)) {
                    store.bootstrap(oid, &value);
                }
                row.push(Arc::new(ReplicaShared {
                    cluster: Arc::clone(&inner),
                    partition: PartitionId(p as u16),
                    idx: i,
                    node,
                    store,
                    layout,
                    log: Mutex::new(Vec::new()),
                    last_req: AtomicU64::new(0),
                    completed_req: AtomicU64::new(0),
                    in_write_phase: AtomicU64::new(0),
                    object_map: Mutex::new(HashMap::new()),
                    addr_heard: Mutex::new(HashMap::new()),
                    transfer: Mutex::new(TransferProgress::default()),
                    log_floor: AtomicU64::new(0),
                    restored_cycles: AtomicU64::new(0),
                    disk: inner
                        .cfg
                        .durability
                        .as_ref()
                        .map(|d| d.storage.disk(format!("heron-p{p}r{i}"))),
                    exec_trace: Mutex::new(Vec::new()),
                    qps: Mutex::new(HashMap::new()),
                }));
            }
            replicas.push(row);
        }
        HeronCluster {
            inner,
            replicas: Arc::new(replicas),
        }
    }

    /// Spawns all protocol processes (ordering replicas, Heron executors,
    /// and service processes) into the simulation.
    pub fn spawn(&self, simulation: &sim::Simulation) {
        if self.inner.cfg.tracing {
            *self.inner.tracer.lock() = Some(simulation.enable_tracing());
        }
        self.inner.mcast.spawn_replicas(simulation);
        for p in 0..self.inner.cfg.partitions {
            for i in 0..self.inner.cfg.replicas_per_partition {
                let shared = Arc::clone(&self.replicas[p][i]);
                let deliveries = self.inner.mcast.deliveries(GroupId(p as u16), i);
                if self.inner.cfg.executor_width == 1 {
                    // Serial executor, spawned under the same name in the
                    // same order as ever: width 1 is schedule-hash
                    // bit-identical to the pre-pool system.
                    simulation.spawn(format!("heron-exec-p{p}r{i}"), move || {
                        Executor::new(shared, deliveries).run()
                    });
                } else {
                    crate::executor::spawn_pool(simulation, shared, deliveries, p, i);
                }
                let shared = Arc::clone(&self.replicas[p][i]);
                simulation.spawn(format!("heron-svc-p{p}r{i}"), move || {
                    Service::new(shared).run()
                });
                if self.inner.cfg.durability.is_some() {
                    // Spawned after the executor and service so the
                    // process roster is a strict extension of the
                    // durability-off deployment.
                    let shared = Arc::clone(&self.replicas[p][i]);
                    simulation.spawn(format!("heron-ckpt-p{p}r{i}"), move || {
                        crate::checkpoint::run_checkpointer(shared)
                    });
                }
            }
        }
    }

    /// Attaches a new client on its own fabric node.
    pub fn client(&self, name: impl Into<String>) -> crate::client::HeronClient {
        crate::client::HeronClient::attach(self, name.into())
    }

    /// Cluster-wide metrics handle.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// The race detector, when enabled via [`HeronConfig::race_detector`].
    pub fn race_detector(&self) -> Option<rdma_sim::RaceDetector> {
        self.inner.detector.clone()
    }

    /// The trace handle, when enabled via [`HeronConfig::tracing`] —
    /// available once the cluster was [`HeronCluster::spawn`]ed.
    pub fn tracer(&self) -> Option<sim::trace::Tracer> {
        self.inner.tracer.lock().clone()
    }

    /// All race and protocol-lint reports recorded so far (empty when the
    /// detector is off).
    pub fn race_reports(&self) -> Vec<rdma_sim::RaceReport> {
        self.inner
            .detector
            .as_ref()
            .map(|d| d.reports())
            .unwrap_or_default()
    }

    /// The configuration in force.
    pub fn config(&self) -> &HeronConfig {
        &self.inner.cfg
    }

    /// The fabric node of replica `(p, i)`.
    pub fn replica_node(&self, p: PartitionId, i: usize) -> Node {
        self.inner.nodes[p.0 as usize][i].clone()
    }

    /// Crashes replica `(p, i)`: its verbs fail and writes to it are
    /// dropped until [`HeronCluster::recover_replica`].
    pub fn crash_replica(&self, p: PartitionId, i: usize) {
        self.inner
            .fabric
            .crash(self.inner.nodes[p.0 as usize][i].id());
    }

    /// Recovers a crashed replica. It will detect the deliveries it missed
    /// and run the state-transfer protocol to catch up.
    pub fn recover_replica(&self, p: PartitionId, i: usize) {
        self.inner
            .fabric
            .recover(self.inner.nodes[p.0 as usize][i].id());
    }

    /// Cuts power to replica `(p, i)`: beyond a crash, its registered
    /// memory (store slots, coordination regions, ordering rings) is wiped.
    /// On [`HeronCluster::recover_replica`] the executor rebuilds from its
    /// durable checkpoint plus the ordering WAL tail — or, without
    /// durability, re-bootstraps and relies on a full state transfer.
    pub fn power_loss_replica(&self, p: PartitionId, i: usize) {
        self.inner
            .fabric
            .power_loss(self.inner.nodes[p.0 as usize][i].id());
    }

    /// Forces one checkpoint round at replica `(p, i)` right now (must be
    /// called from inside the simulation — the disk I/O is charged to the
    /// calling process). Returns the checkpoint metadata, or `None` if the
    /// round was skipped (no durability, replica dead or busy).
    pub fn checkpoint_replica(
        &self,
        p: PartitionId,
        i: usize,
    ) -> Option<crate::checkpoint::CheckpointMeta> {
        crate::checkpoint::checkpoint_replica(&self.replicas[p.0 as usize][i])
    }

    /// The durable checkpoint currently on replica `(p, i)`'s disk, if
    /// any. Free of modeled I/O when called from the host thread
    /// (offline inspection).
    pub fn checkpoint_meta(
        &self,
        p: PartitionId,
        i: usize,
    ) -> Option<crate::checkpoint::CheckpointMeta> {
        let disk = self.replicas[p.0 as usize][i].disk.as_ref()?;
        let file = disk.get(crate::checkpoint::CKPT_FILE)?;
        Some(crate::checkpoint::decode_file(&file).0)
    }

    /// The application-state digest of replica `(p, i)` (the
    /// [`crate::StateMachine::digest`] hook over its live store).
    pub fn state_digest(&self, p: PartitionId, i: usize) -> u64 {
        let shared = &self.replicas[p.0 as usize][i];
        self.inner.app.digest(shared.partition, &shared.store)
    }

    /// A snapshot image of replica `(p, i)`'s live store through the
    /// application's [`crate::StateMachine::snapshot`] hook. Host-thread
    /// diagnostic for the checkpoint round-trip property tests — it is the
    /// caller's job to ensure the replica is quiescent.
    pub fn snapshot_image(&self, p: PartitionId, i: usize) -> Vec<u8> {
        let shared = &self.replicas[p.0 as usize][i];
        self.inner.app.snapshot(shared.partition, &shared.store)
    }

    /// Number of entries in replica `(p, i)`'s in-memory update log — with
    /// [`HeronCluster::wal_frames`], the log-growth guard's probe.
    pub fn update_log_len(&self, p: PartitionId, i: usize) -> usize {
        self.replicas[p.0 as usize][i].log.lock().len()
    }

    /// The update-log truncation horizon of replica `(p, i)` (raw
    /// timestamp; 0 when never truncated).
    pub fn log_floor(&self, p: PartitionId, i: usize) -> u64 {
        self.replicas[p.0 as usize][i]
            .log_floor
            .load(Ordering::SeqCst)
    }

    /// I/O counters of replica `(p, i)`'s durable namespace (`None`
    /// without durability).
    pub fn disk_stats(&self, p: PartitionId, i: usize) -> Option<sim::storage::DiskStats> {
        self.replicas[p.0 as usize][i]
            .disk
            .as_ref()
            .map(|d| d.stats())
    }

    /// Number of frames in the ordering WAL of replica `(p, i)` (0 without
    /// durability) — the log-growth guard's probe.
    pub fn wal_frames(&self, p: PartitionId, i: usize) -> usize {
        self.inner.mcast.wal_frames(GroupId(p.0), i)
    }

    /// Direct read of a committed value at a given replica, for tests and
    /// examples (latest version in its store).
    pub fn peek(&self, p: PartitionId, i: usize, oid: ObjectId) -> Option<bytes::Bytes> {
        self.replicas[p.0 as usize][i]
            .store
            .get(oid)
            .map(|(_, v)| v)
    }

    /// Direct read of a committed value *with* its version timestamp
    /// (diagnostics): the latest version of `oid` at replica `(p, i)`.
    pub fn peek_versioned(
        &self,
        p: PartitionId,
        i: usize,
        oid: ObjectId,
    ) -> Option<(u64, bytes::Bytes)> {
        self.replicas[p.0 as usize][i]
            .store
            .get(oid)
            .map(|(t, v)| (t.raw(), v))
    }

    /// The write log of replica `(p, i)` (diagnostics): one `(ts_raw, oid)`
    /// entry per local write, in apply order.
    pub fn write_log(&self, p: PartitionId, i: usize) -> Vec<(u64, ObjectId)> {
        self.replicas[p.0 as usize][i].log.lock().clone()
    }

    /// The object ids hosted by replica `(p, i)`'s store, sorted
    /// (diagnostics).
    pub fn object_ids(&self, p: PartitionId, i: usize) -> Vec<ObjectId> {
        self.replicas[p.0 as usize][i].store.object_ids()
    }

    /// Deliberately corrupts the stored value of `oid` at one replica,
    /// bypassing the protocol (both versions' payload bytes are flipped;
    /// timestamps stay intact). This exists for the consistency checker's
    /// self-test: a checker that cannot catch this corruption is broken.
    pub fn corrupt_value(&self, p: PartitionId, i: usize, oid: ObjectId) {
        self.replicas[p.0 as usize][i].store.corrupt(oid);
    }

    /// The raw `last_req` timestamp of a replica (diagnostics).
    pub fn last_req(&self, p: PartitionId, i: usize) -> u64 {
        self.replicas[p.0 as usize][i]
            .last_req
            .load(Ordering::SeqCst)
    }

    /// The request-handling trace of a replica (diagnostics):
    /// `(ts_raw, 'e'|'s'|'t')` for executed / skipped / transferred-to.
    pub fn exec_trace(&self, p: PartitionId, i: usize) -> Vec<(u64, char)> {
        self.replicas[p.0 as usize][i].exec_trace.lock().clone()
    }

    /// The raw `completed_req` timestamp of a replica (diagnostics).
    pub fn completed_req(&self, p: PartitionId, i: usize) -> u64 {
        self.replicas[p.0 as usize][i]
            .completed_req
            .load(Ordering::SeqCst)
    }

    /// A replica's inbound-transfer staging view (diagnostics):
    /// `(expected, stream_bound, [(slot_stamp, slot_bound); slots], applied)`.
    pub fn transfer_view(
        &self,
        p: PartitionId,
        i: usize,
    ) -> (u64, Option<u64>, Vec<(u64, u64)>, u64) {
        let shared = &self.replicas[p.0 as usize][i];
        let prog = shared.transfer.lock();
        let cfg = &self.inner.cfg;
        let slots = (1..=cfg.transfer_slots as u64)
            .map(|k| {
                let slot = shared
                    .layout
                    .ring_slot(k, cfg.transfer_slots, cfg.transfer_chunk);
                (
                    shared.node.local_read_word(slot).unwrap_or(0),
                    shared.node.local_read_word(slot.offset(16)).unwrap_or(0),
                )
            })
            .collect();
        (
            prog.expected,
            prog.stream_bound,
            slots,
            shared
                .node
                .local_read_word(shared.layout.applied)
                .unwrap_or(0),
        )
    }

    /// A replica's statesync memory view (diagnostics): one
    /// `(req_tmp, status)` pair per group member.
    pub fn sync_view(&self, p: PartitionId, i: usize) -> Vec<(u64, u64)> {
        let shared = &self.replicas[p.0 as usize][i];
        (0..self.inner.cfg.replicas_per_partition)
            .map(|q| {
                let slot = shared.layout.sync_slot(q);
                (
                    shared.node.local_read_word(slot).unwrap_or(0),
                    shared.node.local_read_word(slot.offset(8)).unwrap_or(0),
                )
            })
            .collect()
    }
}
