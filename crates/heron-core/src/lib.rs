//! **Heron**: scalable state machine replication on shared memory.
//!
//! A reproduction of *"Heron: Scalable State Machine Replication on Shared
//! Memory"* (Eslahi-Kelorazi, Le, Pedone — DSN 2023). Heron shards the
//! application state across partitions (scalability) and coordinates
//! linearizable execution over one-sided RDMA (microsecond latency):
//!
//! * requests are ordered within and across partitions by an RDMA-based
//!   **atomic multicast** (the [`amcast`] crate);
//! * **single-partition requests** execute as in classic SMR;
//! * **multi-partition requests** execute at *every* involved partition:
//!   a Phase-2 barrier (one-sided writes + majority wait) guarantees peers
//!   have caught up, remote objects are read with one-sided RDMA reads
//!   under a **dual-versioning** scheme that tolerates concurrent writers,
//!   local objects only are written, and a Phase-4 barrier stops anyone
//!   from racing ahead;
//! * replicas left behind by the majority quorums (**laggers**) recover
//!   with a state-transfer protocol that streams 32 KiB RDMA writes.
//!
//! Everything runs on the deterministic virtual-time fabric of the [`sim`]
//! and [`rdma_sim`] crates, so latencies are modeled (calibrated to the
//! paper's ConnectX-4 testbed) and every run is reproducible.
//!
//! # Example
//!
//! A replicated counter on two partitions:
//!
//! ```
//! use heron_core::{
//!     Execution, HeronCluster, HeronConfig, LocalReader, ObjectId, PartitionId, Placement,
//!     ReadSet, StateMachine,
//! };
//! use bytes::Bytes;
//! use rdma_sim::{Fabric, LatencyModel};
//! use std::sync::Arc;
//!
//! struct Counters;
//! impl StateMachine for Counters {
//!     fn placement(&self, oid: ObjectId) -> Placement {
//!         Placement::Partition(PartitionId((oid.0 % 2) as u16))
//!     }
//!     fn destinations(&self, req: &[u8]) -> Vec<PartitionId> {
//!         vec![PartitionId(req[0] as u16 % 2)]
//!     }
//!     fn read_set(&self, req: &[u8]) -> Vec<ObjectId> {
//!         vec![ObjectId(req[0] as u64)]
//!     }
//!     fn execute(
//!         &self,
//!         _p: PartitionId,
//!         req: &[u8],
//!         reads: &ReadSet,
//!         _local: &dyn LocalReader,
//!     ) -> Execution {
//!         let oid = ObjectId(req[0] as u64);
//!         let v = reads.get(oid).map(|b| b[0]).unwrap_or(0);
//!         Execution {
//!             writes: vec![(oid, Bytes::copy_from_slice(&[v + 1]))],
//!             response: Bytes::copy_from_slice(&[v + 1]),
//!             compute: std::time::Duration::from_micros(1),
//!         }
//!     }
//!     fn bootstrap(&self, p: PartitionId) -> Vec<(ObjectId, Bytes)> {
//!         (0..4u64)
//!             .filter(|o| o % 2 == p.0 as u64)
//!             .map(|o| (ObjectId(o), Bytes::copy_from_slice(&[0])))
//!             .collect()
//!     }
//! }
//!
//! let simulation = sim::Simulation::new(1);
//! let fabric = Fabric::new(LatencyModel::connectx4());
//! let cluster = HeronCluster::build(&fabric, HeronConfig::new(2, 3), Arc::new(Counters));
//! cluster.spawn(&simulation);
//! let mut client = cluster.client("c0");
//! simulation.spawn("client", move || {
//!     assert_eq!(client.execute(&[0])[0], 1);
//!     assert_eq!(client.execute(&[0])[0], 2);
//!     assert_eq!(client.execute(&[1])[0], 1);
//! });
//! simulation.run_until(sim::SimTime::from_millis(50)).unwrap();
//! ```
#![forbid(unsafe_code)]

mod app;
pub mod blame;
pub mod checker;
pub mod checkpoint;
mod client;
mod cluster;
mod config;
pub mod critical_path;
mod executor;
mod layout;
mod metrics;
mod replica;
mod server;
mod store;
mod types;

pub use app::{Execution, LocalReader, ReadSet, SnapshotStore, StateMachine};
pub use checker::{CheckedClient, Checker, OpRecord, SequentialSpec, Violation};
pub use checkpoint::CheckpointMeta;
pub use client::HeronClient;
pub use cluster::HeronCluster;
pub use config::{DurabilityConfig, ExecutionMode, HeronConfig};
pub use metrics::{
    Breakdown, Counter, DelayCounters, Histogram, HistogramSnapshot, Metrics, MetricsRegistry,
    TransferRecord, EXEMPLAR_K,
};
pub use store::{Slot, SlotVersions, VersionedStore};
pub use types::{ObjectId, PartitionId, Placement, StorageKind};

// Re-exported for applications that need ordering-layer types.
pub use amcast::Timestamp;
