//! The serial replica executor (Algorithm 1's delivery loop) and the
//! state-transfer protocol of Algorithm 3.
//!
//! The per-command execution path (Phase 2/4 barriers, reading phase,
//! compute, writing phase, reply) lives in [`crate::executor::ExecCore`],
//! shared with the P-SMR executor pool. This module keeps the serial
//! driver — one process doing delivery, execution and transfer serving in
//! a single loop, exactly as before the pool existed — and the transfer
//! protocol itself, as free functions so the pool dispatcher can run both
//! sides of it on the workers' behalf.

use crate::cluster::ReplicaShared;
use crate::executor::{ExecCore, StallHandler, StallOutcome};
use crate::layout::{encode_record, encode_sync, CHUNK_HDR};
use crate::metrics::TransferRecord;
use crate::types::{ObjectId, PartitionId, StorageKind};
use amcast::{Delivered, DeliveryEvent, Timestamp};
use sim::{Mailbox, SimTime};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// A replica's request-execution process (serial, `executor_width == 1`).
pub(crate) struct Executor {
    core: ExecCore,
    deliveries: Mailbox<DeliveryEvent>,
    /// First time we observed each pending state-transfer request
    /// (requester idx, from_tmp) — drives the deterministic responder
    /// rotation of Algorithm 3.
    seen_requests: HashMap<(usize, u64), SimTime>,
    /// Set by an ordering-layer Gap: requests were missed wholesale, so
    /// nothing may execute until a state transfer covers everything up to
    /// the next delivery.
    needs_full_sync: bool,
    /// Power cycles of the node last observed: a bump means our registered
    /// memory (store slots, coordination regions) was wiped and the
    /// cold-restart path must rebuild it before anything executes.
    power_cycles: u64,
}

impl Executor {
    pub(crate) fn new(shared: Arc<ReplicaShared>, deliveries: Mailbox<DeliveryEvent>) -> Self {
        let power_cycles = shared.node.power_cycles();
        Executor {
            core: ExecCore { shared, lane: 0 },
            deliveries,
            seen_requests: HashMap::new(),
            needs_full_sync: false,
            power_cycles,
        }
    }

    fn shared(&self) -> &Arc<ReplicaShared> {
        &self.core.shared
    }

    fn cfg(&self) -> &crate::HeronConfig {
        &self.shared().cluster.cfg
    }

    fn n(&self) -> usize {
        self.cfg().replicas_per_partition
    }

    /// Runs the executor loop forever.
    pub(crate) fn run(mut self) {
        loop {
            if !self.shared().node.is_alive() {
                // Crashed: stay quiet until recovery; the deliveries we
                // miss surface later as a Gap or as failed remote reads.
                let shared = Arc::clone(self.shared());
                shared
                    .node
                    .poll_until_timeout(|| shared.node.is_alive(), Duration::from_millis(1));
                continue;
            }
            let cycles = self.shared().node.power_cycles();
            if cycles != self.power_cycles {
                // The node lost power while we were dark: registered
                // memory is zeroed, so every byte of protocol state must
                // be rebuilt before a single command may touch it.
                self.power_cycles = cycles;
                self.cold_restart();
            }
            self.serve_transfers();
            // Serving a transfer yields: if power was cut while we
            // streamed, loop back to the crash-wait / cold-restart checks
            // instead of executing a delivery against a wiped store.
            if !self.shared().node.is_alive()
                || self.shared().node.power_cycles() != self.power_cycles
            {
                continue;
            }
            if let Some(ev) = self.deliveries.try_recv() {
                match ev {
                    DeliveryEvent::Deliver(d) => self.on_deliver(d),
                    DeliveryEvent::Gap { .. } => {
                        // We missed ordered requests wholesale (log
                        // overrun while crashed/lagging). Their timestamps
                        // are unknown, so we cannot execute anything until
                        // a state transfer provably covers them — enforced
                        // at the next delivery.
                        self.needs_full_sync = true;
                    }
                }
                continue;
            }
            // Idle: wake on new deliveries, on state-transfer requests we
            // have not yet registered, or when a registered request's
            // responder-rotation turn (Algorithm 3, lines 19–22) reaches
            // us — never busy-wait on a request that is not yet our turn.
            let deliveries = self.deliveries.clone();
            let shared = Arc::clone(self.shared());
            let now = sim::now();
            let mut timeout = Duration::from_millis(10);
            for key in pending_sync_requests(&shared) {
                if let Some(first) = self.seen_requests.get(&key) {
                    let rank = (shared.idx + self.n() - key.0 - 1) % self.n();
                    let due = *first + self.cfg().transfer_timeout * rank as u32;
                    timeout = timeout.min(due.checked_sub(now).unwrap_or(Duration::from_nanos(1)));
                }
            }
            let seen: std::collections::HashSet<(usize, u64)> =
                self.seen_requests.keys().copied().collect();
            shared.node.poll_until_timeout(
                || {
                    !deliveries.is_empty()
                        || pending_sync_requests(&shared)
                            .iter()
                            .any(|k| !seen.contains(k))
                },
                timeout,
            );
        }
    }

    fn on_deliver(&mut self, d: Delivered) {
        let shared = Arc::clone(self.shared());
        let ts = d.ts;
        // Lines 3–4: skip requests already covered by a state transfer.
        if ts.raw() <= shared.last_req.load(Ordering::SeqCst) {
            shared
                .cluster
                .metrics
                .skipped_requests
                .fetch_add(1, Ordering::Relaxed);
            shared.exec_trace.lock().push((ts.raw(), 's'));
            return;
        }
        shared.last_req.store(ts.raw(), Ordering::SeqCst);

        // A gap in the ordered stream: everything we missed has a smaller
        // timestamp than this delivery, so keep transferring until a
        // responder's snapshot covers this request too — then skip it.
        if self.needs_full_sync {
            while state_transfer(&shared) < ts.raw() {}
            self.needs_full_sync = false;
            shared.exec_trace.lock().push((ts.raw(), 's'));
            return;
        }
        shared.exec_trace.lock().push((ts.raw(), 'e'));

        let mut stalls = SerialStalls { shared: &shared };
        let _ = self
            .core
            .run_command(&d, sim::now().as_nanos(), &mut stalls);
    }

    /// Cold restart after a power loss: rebuild the store from the durable
    /// checkpoint, reset every piece of volatile protocol state to the
    /// checkpoint bound, and replay the ordering WAL tail through the
    /// normal delivery path. Equivalent to a state transfer whose
    /// responder is the disk — the execution trace restarts with a
    /// `('t', bound)` entry and replayed commands append fresh `'e'`
    /// entries past it.
    ///
    /// Without durability there is no checkpoint and no WAL: the store is
    /// re-bootstrapped to time zero and `needs_full_sync` forces the next
    /// delivery to wait for a live-peer transfer covering everything.
    fn cold_restart(&mut self) {
        let shared = Arc::clone(self.shared());
        let t0 = sim::now();
        // Volatile protocol state is gone with the memory that backed it.
        shared.log.lock().clear();
        shared.exec_trace.lock().clear();
        shared.object_map.lock().clear();
        shared.addr_heard.lock().clear();
        *shared.transfer.lock() = crate::cluster::TransferProgress::default();
        self.seen_requests.clear();
        // Rebuild the store image: checkpoint if one exists, time-zero
        // bootstrap otherwise. The checkpoint read pays modeled disk
        // latency — the first component of recovery time.
        let restored = crate::checkpoint::load_checkpoint(&shared);
        let bound = match &restored {
            Some(meta) => meta.bound,
            None => {
                for (oid, value) in shared.cluster.app.bootstrap(shared.partition) {
                    shared.store.bootstrap(oid, &value);
                }
                0
            }
        };
        shared.last_req.store(bound, Ordering::SeqCst);
        shared.completed_req.store(bound, Ordering::SeqCst);
        // Our own update log restarts empty at the bound: a peer asking
        // for state from below it gets full state, not an empty diff.
        shared.log_floor.store(bound, Ordering::SeqCst);
        if bound > 0 {
            shared.exec_trace.lock().push((bound, 't'));
        }
        // The store reflects this power cycle again: re-arm the
        // checkpointer, which refuses to snapshot while `restored_cycles`
        // lags the node's cycle count (between the wipe and this line the
        // watermarks look quiescent but the slots are zeros).
        shared
            .restored_cycles
            .store(self.power_cycles, Ordering::SeqCst);
        publish_progress(&shared);
        // With durability the WAL speaks for everything delivered past the
        // bound (bound 0 = since genesis, before the first checkpoint), so
        // replay alone restores us. Without it, nothing does: hold
        // execution until a live-peer transfer covers the next delivery.
        self.needs_full_sync = shared.disk.is_none();
        // Replay the WAL tail past the bound through the normal delivery
        // path — the second component of recovery time. Deliveries the
        // ordering replica re-sends (or that were already sitting in our
        // mailbox) re-appear with timestamps the replay has covered and
        // are skipped by the `last_req` watermark.
        let group = amcast::GroupId(shared.partition.0);
        let tail = shared.cluster.mcast.wal_tail(group, shared.idx, bound);
        let _span = sim::trace::span_args(
            "recover.cold",
            bound,
            &[("bound", bound), ("tail", tail.len() as u64)],
        );
        // Count frames actually fed to the delivery path, not the tail
        // length: a power cut mid-replay aborts the loop below, and the
        // next cold restart replays (and counts) those frames again —
        // `recover.replayed` must track work done, or repeated cycles
        // double-count the untouched remainder.
        let mut replayed = 0u64;
        for d in tail {
            // Replay costs virtual time: if power is cut again mid-replay,
            // stop — the run loop sees the new cycle and restarts recovery
            // from the (still intact) checkpoint.
            if !shared.node.is_alive() || shared.node.power_cycles() != self.power_cycles {
                break;
            }
            replayed += 1;
            self.on_deliver(d);
        }
        let reg = shared.cluster.metrics.registry();
        if reg.is_enabled() {
            reg.counter("recover.cold").add(1);
            reg.counter("recover.replayed").add(replayed);
            reg.counter("recover.time_ns")
                .add((sim::now() - t0).as_nanos() as u64);
        }
    }

    /// Responder side of Algorithm 3 (lines 7–22): serve pending state
    /// transfers whose rotation turn has reached us.
    fn serve_transfers(&mut self) {
        let shared = Arc::clone(self.shared());
        let n = self.n();
        // Drop bookkeeping for requests that were completed by someone.
        let pending: std::collections::HashSet<(usize, u64)> =
            pending_sync_requests(&shared).into_iter().collect();
        self.seen_requests.retain(|k, _| pending.contains(k));
        for p in 0..n {
            if p == shared.idx {
                continue;
            }
            let slot = shared.layout.sync_slot(p);
            let status = shared.node.local_read_word(slot.offset(8)).unwrap_or(0);
            if status != 1 {
                continue;
            }
            let from = shared.node.local_read_word(slot).unwrap_or(0);
            let first_seen = *self.seen_requests.entry((p, from)).or_insert_with(sim::now);
            // Deterministic rotation: requester+1 serves immediately, the
            // next waits one timeout, and so on (line 10 + lines 19–22).
            let my_rank = (shared.idx + n - p - 1) % n;
            let due = first_seen + self.cfg().transfer_timeout * my_rank as u32;
            if sim::now() < due {
                continue;
            }
            respond_transfer(&shared, p, from);
            self.seen_requests.remove(&(p, from));
        }
    }
}

/// [`StallHandler`] of the serial executor: stalls resolve inline through
/// Algorithm 3's requester side, exactly as the pre-pool executor did.
struct SerialStalls<'a> {
    shared: &'a Arc<ReplicaShared>,
}

impl StallHandler for SerialStalls<'_> {
    fn on_phase2_starved(&mut self, dests: &[PartitionId], ts: Timestamp) -> StallOutcome {
        // The transfer is abortable on barrier-heal: delivery at a slow
        // majority can trail ours by whole leader-election timeouts, and
        // every replica of OUR partition may be stalled right here — in
        // which case nobody serves transfers and waiting unconditionally
        // deadlocks the partition (and, transitively, every partition
        // coordinating with it).
        let heal_shared = Arc::clone(self.shared);
        let heal_dests = dests.to_vec();
        let healed = move || coord_status(&heal_shared, &heal_dests, ts, 1).1;
        match state_transfer_abortable(self.shared, &healed) {
            Some(rid) if rid >= ts.raw() => StallOutcome::Covered,
            _ => StallOutcome::Retry,
        }
    }

    fn on_lagging(&mut self, ts: Timestamp) -> StallOutcome {
        if state_transfer(self.shared) >= ts.raw() {
            StallOutcome::Covered
        } else {
            StallOutcome::Retry
        }
    }

    fn on_completed(&mut self, ts: Timestamp) {
        self.shared.completed_req.store(ts.raw(), Ordering::SeqCst);
        // Completed-prefix watermark advanced (serial executor — the pool
        // dispatcher reports via publish_progress).
        sim::note_progress();
    }
}

// ----------------------------------------------------------------------
// Algorithm 3: state transfer (free functions — the serial executor and
// the pool dispatcher both run them).
// ----------------------------------------------------------------------

/// Requester side: ask the group for our missing state and wait until
/// a responder completes it. Returns the responder's snapshot bound
/// (raw timestamp): every request up to and including it is reflected
/// in our state afterwards.
pub(crate) fn state_transfer(shared: &Arc<ReplicaShared>) -> u64 {
    state_transfer_abortable(shared, &|| false).expect("non-abortable transfer always completes")
}

/// [`state_transfer`] with an escape hatch: between responder
/// re-arms, if `abort()` reports that the condition we fell back from
/// has healed (e.g. a coordination barrier's entries arrived late
/// rather than never), the request is withdrawn and `None` returned.
///
/// Without this, a whole partition can deadlock: every executor that
/// misses a barrier by a hair falls into the transfer fallback, and
/// since responders only serve from the executor main loop, replicas
/// stuck in the fallback can never serve each other.
///
/// Withdrawal only happens while the request is provably untouched —
/// our own status word is still 1 (armed, unclaimed; responders claim
/// with a remote CAS on it, and the read-then-reset below is atomic in
/// the cooperative simulation) and no chunk of this transfer has been
/// applied — so a partially-applied snapshot can never be abandoned.
pub(crate) fn state_transfer_abortable(
    shared: &Arc<ReplicaShared>,
    abort: &dyn Fn() -> bool,
) -> Option<u64> {
    let cfg = &shared.cluster.cfg;
    let n = cfg.replicas_per_partition;
    let metrics = &shared.cluster.metrics;
    metrics.transfers_started.fetch_add(1, Ordering::Relaxed);
    let t0 = sim::now();
    let my_sync = shared.layout.sync_slot(shared.idx);
    let slots = cfg.transfer_slots;
    'retry: loop {
        let from = shared.completed_req.load(Ordering::SeqCst);
        {
            let mut prog = shared.transfer.lock();
            prog.expected = 1;
            prog.bytes = 0;
            prog.native_bytes = 0;
            prog.stream_bound = None;
        }
        // Zero the staging ring stamps so stale chunks are not
        // re-applied.
        for k in 1..=slots as u64 {
            let slot = shared.layout.ring_slot(k, slots, cfg.transfer_chunk);
            let _ = shared.node.local_write_word(slot, 0);
        }
        let _ = shared.node.local_write_word(shared.layout.applied, 0);
        // Lines 2–4: write (from, status=1) into our entry on every
        // group member.
        let entry = encode_sync(from, 1);
        loop {
            for q in 0..n {
                let target = shared.peer(shared.partition, q);
                if target.id() == shared.node.id() {
                    let _ = shared.node.local_write(my_sync, &entry);
                } else {
                    let _ = shared.qp(&target).post_write(my_sync, entry.to_vec());
                }
            }
            // Line 5: wait for a responder to flip status back to 0
            // (the low bits; the high bits carry the chunk count).
            let done = shared.node.poll_until_timeout(
                || {
                    shared
                        .node
                        .local_read_word(my_sync.offset(8))
                        .map(|st| st & 3 == 0)
                        .unwrap_or(false)
                },
                cfg.transfer_timeout,
            );
            if done {
                break;
            }
            if abort() {
                let status = shared.node.local_read_word(my_sync.offset(8)).unwrap_or(0);
                let untouched = {
                    let prog = shared.transfer.lock();
                    prog.stream_bound.is_none() && prog.bytes == 0
                };
                if status == 1 && untouched {
                    // Withdraw: reset our own status word first (kills
                    // any in-flight responder claim — the CAS on it
                    // will now fail), then clear our entry on every
                    // peer so their serve loops stop raising it.
                    let _ = shared.node.local_write(my_sync, &encode_sync(0, 0));
                    shared.transfer.lock().expected = 0;
                    let clear = encode_sync(0, 0);
                    for q in 0..n {
                        let target = shared.peer(shared.partition, q);
                        if target.id() != shared.node.id() {
                            let _ = shared.qp(&target).post_write(my_sync, clear.to_vec());
                        }
                    }
                    return None;
                }
            }
            // Timeout: the selected responder may have failed; re-arm
            // (the rotation on the responder side picks the next one).
        }
        // Every chunk landed before the status flip (FIFO), but the
        // service process still needs time to *apply* them — wait for
        // it. A timeout here means a racing responder's stale chunk
        // clobbered one of ours: redo the transfer.
        let chunks = shared
            .node
            .local_read_word(my_sync.offset(8))
            .expect("own sync word")
            >> 2;
        let applied = shared.node.poll_until_timeout(
            || shared.transfer.lock().expected > chunks,
            cfg.transfer_timeout,
        );
        if !applied {
            continue 'retry;
        }
        // Race-detector edge: read the applied watermark — the service
        // process's last instrumented write — so every chunk it applied
        // happens-before our subsequent execution and coordination
        // writes (and, transitively, before any remote reader that
        // observes our next coordination entry). Free when the
        // detector is off: a local read costs no virtual time.
        let _ = shared.node.local_read_word(shared.layout.applied);
        // Line 6: adopt the responder's request id — but only if it
        // matches the stream we actually applied. A mismatch means two
        // responders raced (one was slow, the rotation fired) and we
        // may hold a mix of their snapshots; redo the transfer from
        // our current position.
        let rid = shared.node.local_read_word(my_sync).expect("own sync word");
        let stream = {
            let mut prog = shared.transfer.lock();
            prog.expected = 0; // disarm: late chunks are dropped
            prog.stream_bound
        };
        if let Some(bound) = stream {
            if bound != rid {
                continue 'retry;
            }
        }
        shared.exec_trace.lock().push((rid, 't'));
        let cur = shared.last_req.load(Ordering::SeqCst);
        shared.last_req.store(cur.max(rid), Ordering::SeqCst);
        let curc = shared.completed_req.load(Ordering::SeqCst);
        shared.completed_req.store(curc.max(rid), Ordering::SeqCst);
        publish_progress(shared);
        let prog = shared.transfer.lock();
        metrics.transfers.lock().push(TransferRecord {
            bytes: prog.bytes,
            duration_ns: (sim::now() - t0).as_nanos() as u64,
            native_bytes: prog.native_bytes,
        });
        return Some(rid);
    }
}

/// Streams the replica's state since `from` to the requester in 32 KiB
/// chunks, then clears the status entry everywhere (Algorithm 3,
/// lines 11–18).
pub(crate) fn respond_transfer(shared: &Arc<ReplicaShared>, requester: usize, from: u64) {
    let cfg = &shared.cluster.cfg;
    let n = cfg.replicas_per_partition;
    // Claim the transfer with a remote CAS on the requester's status
    // word (1 → 2): exactly one responder streams at a time, even if
    // the rotation timeout fires while a slow responder is mid-stream.
    let target = shared.peer(shared.partition, requester);
    let status_addr = shared.layout.sync_slot(requester).offset(8);
    match shared.qp(&target).compare_and_swap(status_addr, 1, 2) {
        Ok(1) => {}
        _ => return, // claimed by someone else, completed, or crashed
    }
    // Snapshot at a request boundary. `in_write_phase` counts executors
    // currently inside a writing phase (the serial executor contributes at
    // most one; pool workers one each).
    shared.node.poll_until_timeout(
        || shared.in_write_phase.load(Ordering::SeqCst) == 0,
        cfg.transfer_timeout,
    );
    let bound = shared.completed_req.load(Ordering::SeqCst);
    // Line 12: the update log bounds what must be synchronized — unless
    // the checkpointer truncated it past the requester's position, in
    // which case the log no longer covers the deficit and we ship full
    // state (transfer-from-checkpoint's live-peer analogue). The floor
    // read and the log scan have no yield between them, and the
    // checkpointer raises the floor before shrinking the log, so a
    // truncated log is never mistaken for a complete diff.
    let floor = shared.log_floor.load(Ordering::SeqCst);
    let oids: BTreeSet<ObjectId> = if from < floor {
        shared.store.object_ids().into_iter().collect()
    } else {
        shared
            .log
            .lock()
            .iter()
            .filter(|(ts, _)| *ts > from)
            .map(|(_, oid)| *oid)
            .collect()
    };
    let qp = shared.qp(&target);
    let app = &shared.cluster.app;
    let chunk_cap = cfg.transfer_chunk;
    let mut chunk_body: Vec<u8> = Vec::with_capacity(chunk_cap);
    let mut stamp = 1u64;
    // Flushes one chunk. Returns `false` — abandoning the serve — if
    // the requester stops applying (its staging ring was poisoned by a
    // stale chunk of an earlier aborted transfer, or it crashed). The
    // requester's retry loop re-arms the request and the rotation will
    // serve it again; never spin on a wedged receiver, or the whole
    // partition loses this replica.
    let flush = |body: &mut Vec<u8>, stamp: &mut u64| -> bool {
        if body.is_empty() {
            return true;
        }
        // Flow control: never run more than the ring size ahead of the
        // requester's applied counter.
        if *stamp > cfg.transfer_slots as u64 {
            let deadline = sim::now() + cfg.transfer_timeout;
            let watermark = loop {
                let Ok(applied) = qp.read_word(shared.layout.applied) else {
                    return false; // requester crashed
                };
                if *stamp <= applied + cfg.transfer_slots as u64 {
                    break applied;
                }
                if sim::now() >= deadline {
                    return false; // no progress: abandon this serve
                }
            };
            // Protocol lint (regression guard): posting past the
            // applied watermark would overwrite a staged chunk the
            // requester's service has not consumed yet — it would land
            // inside the requester's live read window. The wait above
            // makes this unreachable; the lint keeps its own
            // comparison so it trips immediately if a change ever
            // breaks the flow-control condition.
            if let Some(det) = shared.cluster.detector.as_ref() {
                if *stamp > watermark + cfg.transfer_slots as u64 {
                    let slot = shared
                        .layout
                        .ring_slot(*stamp, cfg.transfer_slots, chunk_cap);
                    det.report_lint(
                        "state-transfer chunk overlaps a live read window",
                        &target,
                        "ring",
                        (slot.0, slot.0 + (CHUNK_HDR + chunk_cap) as u64),
                        None,
                        format!(
                            "chunk {} posted while the requester had only applied \
                             {} of a {}-slot staging ring",
                            *stamp, watermark, cfg.transfer_slots
                        ),
                    );
                }
            }
        }
        let mut buf = Vec::with_capacity(CHUNK_HDR + body.len());
        buf.extend_from_slice(&stamp.to_le_bytes());
        buf.extend_from_slice(&(body.len() as u64).to_le_bytes());
        buf.extend_from_slice(&bound.to_le_bytes());
        buf.extend_from_slice(body);
        let slot = shared
            .layout
            .ring_slot(*stamp, cfg.transfer_slots, chunk_cap);
        let _ = qp.post_write(slot, buf);
        *stamp += 1;
        body.clear();
        true
    };
    for oid in oids {
        let Some(slot) = shared.store.slot(oid) else {
            continue;
        };
        let raw = shared.store.raw_slot_bytes(slot);
        // Native objects must be serialized before shipping
        // (paper §V-E2, second scenario).
        if app.storage_kind(oid) == StorageKind::Native {
            sim::sleep_ns(raw.len() as u64 * cfg.ser_ns_per_kib / 1024);
        }
        let record = encode_record(oid, &raw);
        if chunk_body.len() + record.len() > chunk_cap && !flush(&mut chunk_body, &mut stamp) {
            return;
        }
        assert!(
            record.len() <= chunk_cap,
            "object slot larger than a transfer chunk; raise transfer_chunk"
        );
        chunk_body.extend_from_slice(&record);
    }
    if !flush(&mut chunk_body, &mut stamp) {
        return;
    }
    // Lines 16–17: announce completion to the whole group. FIFO RC
    // delivery guarantees the requester sees every chunk before the
    // status flip; the chunk count rides in the status word's high
    // bits so the requester can wait until its service process has
    // *applied* them all (application costs time for natively-stored
    // objects).
    let chunks = stamp - 1;
    let entry = encode_sync(bound, chunks << 2);
    let sync = shared.layout.sync_slot(requester);
    for q in 0..n {
        let t = shared.peer(shared.partition, q);
        if t.id() == shared.node.id() {
            let _ = shared.node.local_write(sync, &entry);
        } else {
            let _ = shared.qp(&t).post_write(sync, entry.to_vec());
        }
    }
}

/// Reads the replica's own coordination memory and returns, per involved
/// partition, `(matching, satisfied-majority, satisfied-everyone)` — free
/// function so the phase-2 barrier can be re-checked from inside the
/// state-transfer fallback without re-borrowing the executor.
///
/// With an executor pool each replica owns `coord_width` lanes — one
/// `(tmp, phase)` entry per worker. A peer *matches* if any of its lanes
/// holds `(ts, ≥phase)` (the worker executing `r` has coordinated and not
/// moved past it — that lane's predecessors all completed, and
/// conflict-ordered dispatch guarantees no conflicting successor has
/// started on any lane).
///
/// A peer without a matching lane still *satisfies the wait* on evidence
/// it already finished `r`, and the evidence differs by width. At width 1
/// execution is in delivery order, so a lane beyond `ts` implies `r`
/// completed there — the paper's single-entry condition, bit for bit. At
/// width > 1 that inference is unsound: a later non-conflicting command
/// can be dispatched to another worker and coordinate while `r` is still
/// running (or parked) — counting its lane would let a Phase-4 barrier
/// pass with no replica of the peer partition having executed `r`, after
/// which the peers recycle their lanes and `r`'s own remote reads find no
/// candidates (the all-`Lagging` livelock). Instead the pool publishes a
/// hole-free completed-prefix watermark ([`publish_progress`]) into every
/// replica's progress region, and a peer counts only when its watermark
/// reaches `ts` — which also covers a peer whose command was superseded
/// by a state transfer and never wrote a lane entry at all.
pub(crate) fn coord_status(
    shared: &ReplicaShared,
    dests: &[PartitionId],
    ts: Timestamp,
    phase: u64,
) -> (HashMap<PartitionId, Vec<usize>>, bool, bool) {
    let n = shared.cluster.cfg.replicas_per_partition;
    let majority = shared.cluster.cfg.majority();
    let width = shared.layout.coord_width;
    let mut matching: HashMap<PartitionId, Vec<usize>> = HashMap::new();
    let mut all_majority = true;
    let mut all_everyone = true;
    for &h in dests {
        let mut ok = 0usize;
        let mut m = Vec::new();
        for q in 0..n {
            let mut lane_match = false;
            let mut lane_beyond = false;
            for lane in 0..width {
                let slot = shared.layout.coord_slot(h.0 as usize, q, lane, n);
                let tmp = shared.node.local_read_word(slot).unwrap_or(0);
                let ph = shared.node.local_read_word(slot.offset(8)).unwrap_or(0);
                if tmp == ts.raw() && ph >= phase {
                    lane_match = true;
                } else if tmp > ts.raw() {
                    lane_beyond = true;
                }
            }
            let finished_evidence = if width == 1 {
                lane_beyond
            } else {
                let slot = shared.layout.progress_slot(h.0 as usize, q, n);
                shared.node.local_read_word(slot).unwrap_or(0) >= ts.raw()
            };
            if lane_match {
                ok += 1;
                m.push(q);
            } else if finished_evidence {
                ok += 1;
            }
        }
        if ok < majority {
            all_majority = false;
        }
        if ok < n {
            all_everyone = false;
        }
        matching.insert(h, m);
    }
    (matching, all_majority, all_everyone)
}

/// Publishes this replica's hole-free completed prefix (`completed_req`)
/// into the progress region of every replica of every partition — the
/// finished-evidence [`coord_status`] consults at width > 1. A no-op at
/// width 1: the serial executor's in-order lanes already carry the same
/// information, and the pre-pool schedule must stay bit-identical.
///
/// Only the dispatcher thread publishes (worker completions funnel
/// through its watermark, and state transfers run on it), so the
/// posted values are monotonic per QP.
pub(crate) fn publish_progress(shared: &Arc<ReplicaShared>) {
    // Completed-prefix watermark advanced: progress for the explorer's
    // zero-virtual-time livelock guards (regardless of whether the value
    // is also published to peers below).
    sim::note_progress();
    if shared.layout.coord_width == 1 {
        return;
    }
    let n = shared.cluster.cfg.replicas_per_partition;
    let slot = shared
        .layout
        .progress_slot(shared.partition.0 as usize, shared.idx, n);
    let buf = shared.completed_req.load(Ordering::SeqCst).to_le_bytes();
    for h in 0..shared.cluster.cfg.partitions {
        for q in 0..n {
            let target = shared.peer(PartitionId(h as u16), q);
            if target.id() == shared.node.id() {
                let _ = shared.node.local_write(slot, &buf);
            } else {
                let _ = shared.qp(&target).post_write(slot, buf.to_vec());
            }
        }
    }
}

/// The `(requester idx, from_tmp)` of every state-transfer request
/// currently raised in this replica's statesync memory.
pub(crate) fn pending_sync_requests(shared: &ReplicaShared) -> Vec<(usize, u64)> {
    let n = shared.cluster.cfg.replicas_per_partition;
    (0..n)
        .filter(|&p| p != shared.idx)
        .filter_map(|p| {
            let slot = shared.layout.sync_slot(p);
            let status = shared.node.local_read_word(slot.offset(8)).unwrap_or(0);
            (status == 1).then(|| (p, shared.node.local_read_word(slot).unwrap_or(0)))
        })
        .collect()
}
