//! The replica executor: Algorithms 1 (coordination), 2 (execution) and
//! the state-transfer protocol of Algorithm 3.

use crate::app::{Execution, LocalReader, ReadSet};
use crate::cluster::ReplicaShared;
use crate::layout::{
    decode_envelope, encode_coord, encode_record, encode_response, encode_sync, resp_slot,
    CHUNK_HDR, COORD_ENTRY,
};
use crate::metrics::{Breakdown, TransferRecord};
use crate::types::{ObjectId, PartitionId, Placement, StorageKind};
use amcast::{mask_groups, Delivered, DeliveryEvent, Timestamp};
use bytes::Bytes;
use rand::Rng;
use sim::{Mailbox, SimTime};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// The executing replica has fallen behind the fast majority and cannot
/// read consistent remote values; it must state-transfer (Algorithm 2,
/// lines 23–25).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Lagging;

/// Writes queued per target node, to be flushed in the same doorbell batch
/// as the next coordination entry for that node (batched mode only).
type PendingWrites = HashMap<rdma_sim::NodeId, Vec<(rdma_sim::Addr, Vec<u8>)>>;

/// A replica's request-execution process.
pub(crate) struct Executor {
    shared: Arc<ReplicaShared>,
    deliveries: Mailbox<DeliveryEvent>,
    /// First time we observed each pending state-transfer request
    /// (requester idx, from_tmp) — drives the deterministic responder
    /// rotation of Algorithm 3.
    seen_requests: HashMap<(usize, u64), SimTime>,
    /// Set by an ordering-layer Gap: requests were missed wholesale, so
    /// nothing may execute until a state transfer covers everything up to
    /// the next delivery.
    needs_full_sync: bool,
}

impl Executor {
    pub(crate) fn new(shared: Arc<ReplicaShared>, deliveries: Mailbox<DeliveryEvent>) -> Self {
        Executor {
            shared,
            deliveries,
            seen_requests: HashMap::new(),
            needs_full_sync: false,
        }
    }

    fn cfg(&self) -> &crate::HeronConfig {
        &self.shared.cluster.cfg
    }

    fn n(&self) -> usize {
        self.cfg().replicas_per_partition
    }

    /// Runs the executor loop forever.
    pub(crate) fn run(mut self) {
        loop {
            if !self.shared.node.is_alive() {
                // Crashed: stay quiet until recovery; the deliveries we
                // miss surface later as a Gap or as failed remote reads.
                self.shared
                    .node
                    .poll_until_timeout(|| self.shared.node.is_alive(), Duration::from_millis(1));
                continue;
            }
            self.serve_transfers();
            if let Some(ev) = self.deliveries.try_recv() {
                match ev {
                    DeliveryEvent::Deliver(d) => self.on_deliver(d),
                    DeliveryEvent::Gap { .. } => {
                        // We missed ordered requests wholesale (log
                        // overrun while crashed/lagging). Their timestamps
                        // are unknown, so we cannot execute anything until
                        // a state transfer provably covers them — enforced
                        // at the next delivery.
                        self.needs_full_sync = true;
                    }
                }
                continue;
            }
            // Idle: wake on new deliveries, on state-transfer requests we
            // have not yet registered, or when a registered request's
            // responder-rotation turn (Algorithm 3, lines 19–22) reaches
            // us — never busy-wait on a request that is not yet our turn.
            let deliveries = self.deliveries.clone();
            let shared = Arc::clone(&self.shared);
            let now = sim::now();
            let mut timeout = Duration::from_millis(10);
            for key in pending_sync_requests(&shared) {
                if let Some(first) = self.seen_requests.get(&key) {
                    let rank = (shared.idx + self.n() - key.0 - 1) % self.n();
                    let due = *first + self.cfg().transfer_timeout * rank as u32;
                    timeout = timeout.min(due.checked_sub(now).unwrap_or(Duration::from_nanos(1)));
                }
            }
            let seen: std::collections::HashSet<(usize, u64)> =
                self.seen_requests.keys().copied().collect();
            self.shared.node.poll_until_timeout(
                || {
                    !deliveries.is_empty()
                        || pending_sync_requests(&shared)
                            .iter()
                            .any(|k| !seen.contains(k))
                },
                timeout,
            );
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 1: coordination.
    // ------------------------------------------------------------------

    fn on_deliver(&mut self, d: Delivered) {
        let shared = Arc::clone(&self.shared);
        let shared = &shared;
        let ts = d.ts;
        // Lines 3–4: skip requests already covered by a state transfer.
        if ts.raw() <= shared.last_req.load(Ordering::SeqCst) {
            shared
                .cluster
                .metrics
                .skipped_requests
                .fetch_add(1, Ordering::Relaxed);
            shared.exec_trace.lock().push((ts.raw(), 's'));
            return;
        }
        shared.last_req.store(ts.raw(), Ordering::SeqCst);

        // A gap in the ordered stream: everything we missed has a smaller
        // timestamp than this delivery, so keep transferring until a
        // responder's snapshot covers this request too — then skip it.
        if self.needs_full_sync {
            while self.state_transfer() < ts.raw() {}
            self.needs_full_sync = false;
            shared.exec_trace.lock().push((ts.raw(), 's'));
            return;
        }
        shared.exec_trace.lock().push((ts.raw(), 'e'));

        let (client_id, seq, submit_ns, payload) = {
            let (c, s, t, p) = decode_envelope(&d.payload);
            (c, s, t, p.to_vec())
        };
        let dests: Vec<PartitionId> = mask_groups(d.dests)
            .into_iter()
            .map(PartitionId::from)
            .collect();
        let ordering_ns = sim::now().as_nanos().saturating_sub(submit_ns);
        // Whole-request span on this executor, correlated on the message
        // uid so one request stitches across partitions. The phase child
        // spans below open and close at the very instants the Breakdown
        // counters sample, so trace-derived attribution matches them
        // exactly (the Fig. 6 view over spans).
        let uid = u64::from(d.id.0);
        let _req_span = sim::trace::span_args(
            "exec.request",
            uid,
            &[
                ("ts", ts.raw()),
                ("partition", u64::from(shared.partition.0)),
                ("partitions", dests.len() as u64),
                ("ordering_ns", ordering_ns),
            ],
        );

        // Lines 5–7: single-partition fast path — classic SMR.
        if dests.len() == 1 {
            let t0 = sim::now();
            let exec_span = sim::trace::span("exec.execute", uid);
            let reads = match self.read_objects(&payload, ts, &dests, &[]) {
                Ok(r) => r,
                Err(Lagging) => {
                    // Local-only reads cannot lag; defensive fallback.
                    while self.state_transfer() < ts.raw() {}
                    return;
                }
            };
            let exec = self.execute_and_write(&payload, ts, &reads);
            let exec_ns = (sim::now() - t0).as_nanos() as u64;
            drop(exec_span);
            shared.completed_req.store(ts.raw(), Ordering::SeqCst);
            self.reply(client_id, seq, &exec.response);
            sim::trace::instant("exec.reply", uid);
            shared.cluster.metrics.record_breakdown(Breakdown {
                ordering_ns,
                coordination_ns: 0,
                execution_ns: exec_ns,
                partitions: 1,
                at_partition: shared.partition.0,
            });
            return;
        }

        // Lines 8–10: Phase 2 — barrier on a majority of every involved
        // partition. If the barrier starves, the peers' coordination
        // writes were lost while we were crashed (they ran this request
        // long ago): recover through state transfer instead of waiting
        // forever.
        let t_p2 = sim::now();
        let p2_span = sim::trace::span("exec.phase2", uid);
        self.write_coord(&dests, ts, 1);
        loop {
            if self.wait_coord_timeout(&dests, ts, 1, self.cfg().transfer_timeout) {
                break;
            }
            // The transfer is abortable on barrier-heal: delivery at a slow
            // majority can trail ours by whole leader-election timeouts, and
            // every replica of OUR partition may be stalled right here — in
            // which case nobody serves transfers and waiting unconditionally
            // deadlocks the partition (and, transitively, every partition
            // coordinating with it).
            let heal_shared = Arc::clone(shared);
            let heal_dests = dests.clone();
            let healed = move || coord_status(&heal_shared, &heal_dests, ts, 1).1;
            match self.state_transfer_abortable(&healed) {
                Some(rid) if rid >= ts.raw() => return, // transfer covered this request
                _ => {}
            }
        }
        let p2_ns = (sim::now() - t_p2).as_nanos() as u64;
        drop(p2_span);

        // Lines 11–13: execution (reading phase, compute, writing phase).
        // If we have lagged behind the fast majority, state-transfer; a
        // transfer whose snapshot already includes this request covers it
        // (it will be skipped via last_req), otherwise we caught up to a
        // point *before* this request and must still execute it.
        let t_exec = sim::now();
        let exec_span = sim::trace::span("exec.execute", uid);
        let mut pending_writes = PendingWrites::new();
        let active_only = self.cfg().execution_mode == crate::ExecutionMode::ActiveOnly;
        let active = shared
            .cluster
            .app
            .active_partition(&payload)
            .unwrap_or(dests[0]);
        let response = if active_only && active != shared.partition {
            // Passive partition (§III-D2 variant): the active partition
            // executes and writes our objects remotely. We only keep the
            // update log complete (our declared read set covers what the
            // active may write here) and acknowledge the client; the
            // FIFO link guarantees the active's object writes land before
            // its Phase-4 coordination entry does.
            let mut log = shared.log.lock();
            for oid in shared.cluster.app.read_set_at(shared.partition, &payload) {
                if shared.cluster.app.placement(oid) == Placement::Partition(shared.partition) {
                    log.push((ts.raw(), oid));
                }
            }
            Bytes::new()
        } else {
            let exec = loop {
                pending_writes.clear();
                let attempt = if active_only {
                    self.execute_active_only(&payload, ts, &dests, &mut pending_writes)
                } else {
                    self.read_objects(&payload, ts, &dests, &dests)
                        .map(|reads| self.execute_and_write(&payload, ts, &reads))
                };
                match attempt {
                    Ok(exec) => break exec,
                    Err(Lagging) => {
                        let rid = self.state_transfer();
                        if rid >= ts.raw() {
                            return; // the transfer included this request
                        }
                    }
                }
            };
            exec.response
        };
        let exec_ns = (sim::now() - t_exec).as_nanos() as u64;
        drop(exec_span);

        // Lines 14–16: Phase 4 — same barrier, with the optional
        // wait-for-all delay (paper §V-E1). Queued active-only write-backs
        // ride the same doorbells.
        let t_p4 = sim::now();
        let p4_span = sim::trace::span("exec.phase4", uid);
        // Protocol lint (regression guard): the Phase-4 entry — which in
        // batched active-only mode carries the remote object write-backs —
        // must never be posted before the Phase-2 quorum was observed.
        // Coordination entries are monotone, so once the barrier above
        // passed this stays satisfied; a hit means a code change skipped
        // or reordered the Phase-2 wait.
        if let Some(det) = shared.cluster.detector.as_ref() {
            let (_, quorum, _) = self.coord_status(&dests, ts, 1);
            if !quorum {
                let coord_len = (self.cfg().partitions * self.n() * COORD_ENTRY) as u64;
                det.report_lint(
                    "Phase-2 write-back before quorum clock advanced",
                    &shared.node,
                    "coord",
                    (shared.layout.coord.0, shared.layout.coord.0 + coord_len),
                    None,
                    format!(
                        "posting the Phase-4 entry (and its queued write-backs) for ts {} \
                         while the Phase-2 majority barrier is not satisfied",
                        ts.raw()
                    ),
                );
            }
        }
        self.write_coord_with(&dests, ts, 2, pending_writes);
        self.wait_coord(&dests, ts, 2, self.cfg().wait_for_all);
        let p4_ns = (sim::now() - t_p4).as_nanos() as u64;
        drop(p4_span);

        shared.completed_req.store(ts.raw(), Ordering::SeqCst);
        // Line 17: reply.
        self.reply(client_id, seq, &response);
        sim::trace::instant("exec.reply", uid);
        shared.cluster.metrics.record_breakdown(Breakdown {
            ordering_ns,
            coordination_ns: p2_ns + p4_ns,
            execution_ns: exec_ns,
            partitions: dests.len() as u16,
            at_partition: shared.partition.0,
        });
    }

    /// Writes our coordination entry `(r.tmp, phase)` to every replica of
    /// every involved partition: smallest partition first, then by replica
    /// index — the order behind Table I's per-partition asymmetry.
    fn write_coord(&self, dests: &[PartitionId], ts: Timestamp, phase: u64) {
        self.write_coord_with(dests, ts, phase, PendingWrites::new());
    }

    /// [`Self::write_coord`] with queued object writes coalesced in: in
    /// batched mode (`max_batch > 1`) each target's pending writes and its
    /// coordination entry are flushed as ONE doorbell batch — the coord
    /// entry pushed last, so by the fabric's in-order application a peer
    /// that observes the barrier entry also observes every object write
    /// that preceded it (the invariant the passive execution path relies
    /// on, previously guaranteed by FIFO ordering of individual verbs).
    fn write_coord_with(
        &self,
        dests: &[PartitionId],
        ts: Timestamp,
        phase: u64,
        mut pending: PendingWrites,
    ) {
        let shared = &self.shared;
        let n = self.n();
        let batched = self.cfg().max_batch() > 1;
        let entry = encode_coord(ts.raw(), phase);
        let mut sorted = dests.to_vec();
        sorted.sort_unstable();
        for h in sorted {
            for q in 0..n {
                let target = shared.peer(h, q);
                let slot_on_target =
                    self.layout_of(&target)
                        .coord_slot(shared.partition.0 as usize, shared.idx, n);
                if target.id() == shared.node.id() {
                    let _ = shared.node.local_write(slot_on_target, &entry);
                } else if batched {
                    let mut batch = shared.qp(&target).write_batch();
                    for (addr, buf) in pending.remove(&target.id()).unwrap_or_default() {
                        batch.push(addr, buf);
                    }
                    batch.push(slot_on_target, entry.to_vec());
                    let _ = batch.post();
                } else {
                    let _ = shared
                        .qp(&target)
                        .post_write(slot_on_target, entry.to_vec());
                }
            }
        }
        // Write-backs only target replicas of involved partitions, so the
        // barrier loop above must have drained everything.
        debug_assert!(
            pending.is_empty(),
            "queued writes must target barrier peers"
        );
    }

    fn layout_of(&self, node: &rdma_sim::Node) -> crate::layout::ReplicaLayout {
        // All replica nodes share the same allocation schedule, so the
        // layout of any replica equals ours.
        let _ = node;
        self.shared.layout
    }

    /// Reads our own coordination memory and returns, per involved
    /// partition, `(matching, satisfied)`: the replica indices whose entry
    /// equals `(ts, ≥phase)`, and whether the paper's wait condition
    /// (matching, or already beyond `ts`) holds for a majority.
    fn coord_status(
        &self,
        dests: &[PartitionId],
        ts: Timestamp,
        phase: u64,
    ) -> (HashMap<PartitionId, Vec<usize>>, bool, bool) {
        coord_status(&self.shared, dests, ts, phase)
    }

    /// Like [`Executor::wait_coord`] but gives up after `timeout`; returns
    /// whether the majority barrier was reached.
    fn wait_coord_timeout(
        &self,
        dests: &[PartitionId],
        ts: Timestamp,
        phase: u64,
        timeout: Duration,
    ) -> bool {
        self.shared.node.poll_until_timeout(
            || {
                let (_, maj, _) = self.coord_status(dests, ts, phase);
                maj
            },
            timeout,
        )
    }

    /// Blocks until a majority of every involved partition has coordinated
    /// (Algorithm 1, lines 10/16). With `delta` set, additionally waits up
    /// to δ for *all* replicas, recording Table I's delay statistics.
    fn wait_coord(
        &self,
        dests: &[PartitionId],
        ts: Timestamp,
        phase: u64,
        delta: Option<Duration>,
    ) {
        let shared = &self.shared;
        shared.node.poll_until(|| {
            let (_, maj, _) = self.coord_status(dests, ts, phase);
            maj
        });
        if let Some(delta) = delta {
            let stats = &shared.cluster.metrics.delays[shared.partition.0 as usize];
            stats.total.fetch_add(1, Ordering::Relaxed);
            let (_, _, everyone) = self.coord_status(dests, ts, phase);
            if everyone {
                return;
            }
            stats.delayed.fetch_add(1, Ordering::Relaxed);
            let t0 = sim::now();
            shared.node.poll_until_timeout(
                || {
                    let (_, _, everyone) = self.coord_status(dests, ts, phase);
                    everyone
                },
                delta,
            );
            let waited = (sim::now() - t0).as_nanos() as u64;
            stats.delay_sum_ns.fetch_add(waited, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 2: execution.
    // ------------------------------------------------------------------

    /// The reading phase: local objects from our store, remote objects via
    /// one-sided reads against replicas that coordinated in Phase 2.
    fn read_objects(
        &self,
        payload: &[u8],
        ts: Timestamp,
        _dests: &[PartitionId],
        coordinated: &[PartitionId],
    ) -> Result<ReadSet, Lagging> {
        let shared = &self.shared;
        let app = &shared.cluster.app;
        let mut reads = ReadSet::new();
        for oid in app.read_set_at(shared.partition, payload) {
            match app.placement(oid) {
                Placement::Replicated => {
                    let (_, v) = shared
                        .store
                        .get(oid)
                        .unwrap_or_else(|| panic!("replicated object {oid} missing"));
                    reads.insert(oid, v);
                }
                Placement::Partition(h) if h == shared.partition => {
                    let (_, v) = shared
                        .store
                        .get(oid)
                        .unwrap_or_else(|| panic!("local object {oid} missing"));
                    reads.insert(oid, v);
                }
                Placement::Partition(h) => {
                    debug_assert!(
                        coordinated.contains(&h),
                        "read set touches partition {h} the request was not multicast to"
                    );
                    let v = self.remote_read(oid, h, ts)?;
                    reads.insert(oid, v);
                }
            }
        }
        Ok(reads)
    }

    /// One remote read, with address discovery and failover (Algorithm 2,
    /// lines 8–27).
    fn remote_read(&self, oid: ObjectId, h: PartitionId, ts: Timestamp) -> Result<Bytes, Lagging> {
        let (versions, _cap) = self.remote_read_slot(oid, h, ts)?;
        match versions.read_for(ts) {
            Some((_, v)) => Ok(v.clone()),
            None => Err(Lagging), // lines 23–25
        }
    }

    /// Like [`Executor::remote_read`] but returns the whole dual-version
    /// slot image (used by the active-only execution mode, which must
    /// reconstruct remote slots when writing them back).
    fn remote_read_slot(
        &self,
        oid: ObjectId,
        h: PartitionId,
        ts: Timestamp,
    ) -> Result<(crate::store::SlotVersions, usize), Lagging> {
        let shared = &self.shared;
        loop {
            // Refresh the set of consistent candidates: replicas of h whose
            // coordination entry matches r.tmp (they executed everything
            // before r and have not moved past it).
            let (matching, _, _) = self.coord_status(&[h], ts, 1);
            let candidates = matching.get(&h).cloned().unwrap_or_default();
            let candidates: Vec<usize> = candidates
                .into_iter()
                .filter(|&q| shared.peer(h, q).is_alive())
                .collect();
            if candidates.is_empty() {
                // Everyone readable has moved past r: we are the lagger.
                return Err(Lagging);
            }
            // Address discovery for candidates we don't know yet.
            let known: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&q| {
                    let node = shared.peer(h, q);
                    shared.object_map.lock().contains_key(&(oid, node.id()))
                })
                .collect();
            if known.is_empty() {
                self.query_addresses(oid, h, &candidates);
                continue;
            }
            // Line 15: pick a random coordinated replica.
            let pick = known[sim::with_rng(|r| r.gen_range(0..known.len()))];
            let target = shared.peer(h, pick);
            let (addr, cap) = *shared
                .object_map
                .lock()
                .get(&(oid, target.id()))
                .expect("known candidate has a cached address");
            let slot = crate::store::Slot { addr, cap };
            let t_issue = sim::now().as_nanos();
            match shared.qp(&target).read(addr, slot.size()) {
                Err(_) => {
                    // RDMA exception: the process failed; try another
                    // (lines 20–21). Drop the stale address mapping.
                    shared.object_map.lock().remove(&(oid, target.id()));
                    continue;
                }
                Ok(raw) => {
                    let versions = crate::store::SlotVersions::decode(&raw, cap);
                    let chosen_ts = match versions.read_for(ts) {
                        None => return Err(Lagging), // lines 23–25
                        Some((t, _)) => t,
                    };
                    self.audit_remote_slot_read(
                        &target, oid, addr, cap, &versions, chosen_ts, ts, t_issue,
                    );
                    return Ok((versions, cap));
                }
            }
        }
    }

    /// Protocol lint: adjudicates a completed remote slot read against the
    /// race detector's shadow state. The raw read of a dual-version slot
    /// is exempt from the generic check (it legitimately snapshots the
    /// version a concurrent writer is overwriting), so after decoding we
    /// check only the byte range of the version the reader actually
    /// *chose*: if its last writer has no happens-before edge to us, the
    /// dual-versioning discipline failed to protect this read.
    ///
    /// Two benign cases are filtered out:
    /// * writes that landed *after* we issued the read (`t_issue`) — the
    ///   in-flux window; our snapshot predates them and the shadow marks
    ///   surface them through the `influx_windows` statistic instead;
    /// * state-transfer applies (the service process rewrites whole slots
    ///   on a lagger that a Phase-2-starved reader may still legitimately
    ///   target; the reader's snapshot of committed versions stays valid —
    ///   see DESIGN.md §10).
    ///
    /// Active-only mode is excluded wholesale: racing active replicas
    /// write identical slot images remotely by design.
    #[allow(clippy::too_many_arguments)]
    fn audit_remote_slot_read(
        &self,
        target: &rdma_sim::Node,
        oid: ObjectId,
        addr: rdma_sim::Addr,
        cap: usize,
        versions: &crate::store::SlotVersions,
        chosen_ts: Timestamp,
        r_ts: Timestamp,
        t_issue: u64,
    ) {
        let Some(det) = self.shared.cluster.detector.as_ref() else {
            return;
        };
        if self.cfg().execution_mode != crate::ExecutionMode::ActiveOnly {
            let one = (crate::store::VERSION_HDR + cap) as u64;
            // On a timestamp tie `read_for` keeps version `a`.
            let start = if chosen_ts == versions.a.0 {
                addr
            } else {
                addr.offset(one)
            };
            let Some(conflict) = det.audit_remote_read(target, start, one as usize) else {
                return;
            };
            if conflict.writer.time_ns > t_issue || conflict.writer.proc.starts_with("heron-svc-") {
                return;
            }
            det.report_lint(
                "remote read targeted the active version slot",
                target,
                format!("slot:{oid}"),
                conflict.range,
                Some(conflict.writer),
                format!(
                    "the version chosen by the remote reader (ts {} for request ts {}) \
                     was written with no happens-before edge to the reader; on real \
                     hardware the one-sided read could have returned torn bytes",
                    chosen_ts.raw(),
                    r_ts.raw(),
                ),
            );
        }
    }

    /// Algorithm 2 lines 8–13: ask every replica of `h` for the object's
    /// address and wait until a majority answered.
    fn query_addresses(&self, oid: ObjectId, h: PartitionId, candidates: &[usize]) {
        let shared = &self.shared;
        let majority = self.cfg().majority();
        shared.addr_heard.lock().remove(&oid);
        for q in 0..self.n() {
            let target = shared.peer(h, q);
            if target.id() == shared.node.id() {
                continue;
            }
            let msg = crate::layout::encode_rpc(&crate::layout::Rpc::AddrQuery { oid });
            let _ = shared.qp(&target).send(msg);
        }
        let _ = candidates;
        // Replies are absorbed by the service process, which fills
        // object_map/addr_heard and rings the doorbell.
        shared.node.poll_until_timeout(
            || {
                shared
                    .addr_heard
                    .lock()
                    .get(&oid)
                    .map(|nodes| nodes.len() >= majority)
                    .unwrap_or(false)
            },
            Duration::from_millis(1),
        );
    }

    /// The §III-D2 *active-only* execution of a multi-partition request:
    /// this (active) replica reads the union read set, runs the
    /// application once per involved partition, applies its own writes
    /// locally, and writes the passive partitions' objects remotely as
    /// whole dual-version slot images (racing active replicas write
    /// identical images, so the competition the paper warns about is
    /// harmless here). FIFO links guarantee these object writes land at
    /// every passive replica before this replica's Phase-4 coordination
    /// entry.
    fn execute_active_only(
        &self,
        payload: &[u8],
        ts: Timestamp,
        dests: &[PartitionId],
        pending: &mut PendingWrites,
    ) -> Result<Execution, Lagging> {
        let shared = &self.shared;
        let app = Arc::clone(&shared.cluster.app);
        // Union read set, caching remote slot images for the write-back.
        let mut reads = ReadSet::new();
        let mut remote_slots: HashMap<ObjectId, crate::store::SlotVersions> = HashMap::new();
        for oid in app.read_set(payload) {
            match app.placement(oid) {
                Placement::Replicated => {
                    let (_, v) = shared
                        .store
                        .get(oid)
                        .unwrap_or_else(|| panic!("replicated object {oid} missing"));
                    reads.insert(oid, v);
                }
                Placement::Partition(h) if h == shared.partition => {
                    let (_, v) = shared
                        .store
                        .get(oid)
                        .unwrap_or_else(|| panic!("local object {oid} missing"));
                    reads.insert(oid, v);
                }
                Placement::Partition(h) => {
                    let (versions, _) = self.remote_read_slot(oid, h, ts)?;
                    let (_, v) = versions.read_for(ts).expect("checked by remote_read_slot");
                    reads.insert(oid, v.clone());
                    remote_slots.insert(oid, versions);
                }
            }
        }
        // Execute every partition's share; the active pays all the compute
        // the passive partitions saved.
        let local = StoreReader { shared };
        let mut total_compute = Duration::ZERO;
        let mut response = Bytes::new();
        let mut remote_writes: Vec<(PartitionId, ObjectId, Bytes)> = Vec::new();
        shared.in_write_phase.store(true, Ordering::SeqCst);
        for &p in dests {
            let exec = app.execute(p, payload, &reads, &local);
            total_compute += exec.compute;
            if response.is_empty() {
                response = exec.response.clone();
            }
            for (oid, value) in exec.writes {
                match app.placement(oid) {
                    Placement::Replicated => {
                        panic!("application attempted to write replicated object {oid}")
                    }
                    Placement::Partition(h) if h == shared.partition => {
                        shared.store.set(oid, &value, ts);
                        shared.log.lock().push((ts.raw(), oid));
                    }
                    Placement::Partition(h) => remote_writes.push((h, oid, value)),
                }
            }
        }
        shared.in_write_phase.store(false, Ordering::SeqCst);
        if !total_compute.is_zero() {
            sim::sleep(total_compute);
        }
        // Write back the passive partitions' objects. In batched mode they
        // are queued and ride the Phase-4 coordination doorbell (one batch
        // per peer); unbatched, each image is its own verb, exactly as
        // before.
        let batched = self.cfg().max_batch() > 1;
        for (h, oid, value) in remote_writes {
            let versions = remote_slots.get(&oid).unwrap_or_else(|| {
                panic!(
                    "active-only mode requires remotely-written object {oid} \
                     to be in the request's read set"
                )
            });
            for q in 0..self.n() {
                let target = shared.peer(h, q);
                let Some(&(addr, cap)) = shared.object_map.lock().get(&(oid, target.id())) else {
                    continue; // unknown address: that replica will lag and state-transfer
                };
                let image = encode_slot_image(versions, &value, ts, cap);
                if batched {
                    pending.entry(target.id()).or_default().push((addr, image));
                } else {
                    let _ = shared.qp(&target).post_write(addr, image);
                }
            }
        }
        Ok(Execution {
            writes: vec![],
            response,
            compute: Duration::ZERO,
        })
    }

    /// Compute + writing phase: runs the application, then applies local
    /// writes under the dual-versioning rule and appends to the update log.
    fn execute_and_write(&self, payload: &[u8], ts: Timestamp, reads: &ReadSet) -> Execution {
        let shared = &self.shared;
        let app = &shared.cluster.app;
        let local = StoreReader { shared };
        let exec = app.execute(shared.partition, payload, reads, &local);
        if !exec.compute.is_zero() {
            sim::sleep(exec.compute);
        }
        shared.in_write_phase.store(true, Ordering::SeqCst);
        for (oid, value) in &exec.writes {
            match app.placement(*oid) {
                Placement::Replicated => {
                    panic!("application attempted to write replicated object {oid}")
                }
                Placement::Partition(h) if h == shared.partition => {
                    shared.store.set(*oid, value, ts);
                    shared.log.lock().push((ts.raw(), *oid));
                }
                Placement::Partition(_) => {
                    // Remote object: its own partition writes it (paper
                    // §III-A Phase 3); nothing to do here.
                }
            }
        }
        shared.in_write_phase.store(false, Ordering::SeqCst);
        exec
    }

    /// Writes the response into the client's response slot for our
    /// partition — one unsignaled RDMA write.
    fn reply(&self, client_id: u64, seq: u64, response: &[u8]) {
        let shared = &self.shared;
        let info = {
            let clients = shared.cluster.clients.lock();
            match clients.get(&client_id) {
                Some(c) => (c.node, c.resp_base),
                None => return, // client vanished (e.g. test ended)
            }
        };
        let client_node = shared.cluster.fabric.node(info.0);
        let slot = resp_slot(
            info.1,
            shared.partition.0 as usize,
            shared.idx,
            self.n(),
            self.cfg().max_response,
        );
        let buf = encode_response(seq, response);
        let _ = shared.qp(&client_node).post_write(slot, buf);
    }

    // ------------------------------------------------------------------
    // Algorithm 3: state transfer.
    // ------------------------------------------------------------------

    /// Requester side: ask the group for our missing state and wait until
    /// a responder completes it. Returns the responder's snapshot bound
    /// (raw timestamp): every request up to and including it is reflected
    /// in our state afterwards.
    fn state_transfer(&mut self) -> u64 {
        self.state_transfer_abortable(&|| false)
            .expect("non-abortable transfer always completes")
    }

    /// [`Self::state_transfer`] with an escape hatch: between responder
    /// re-arms, if `abort()` reports that the condition we fell back from
    /// has healed (e.g. a coordination barrier's entries arrived late
    /// rather than never), the request is withdrawn and `None` returned.
    ///
    /// Without this, a whole partition can deadlock: every executor that
    /// misses a barrier by a hair falls into the transfer fallback, and
    /// since responders only serve from the executor main loop, replicas
    /// stuck in the fallback can never serve each other.
    ///
    /// Withdrawal only happens while the request is provably untouched —
    /// our own status word is still 1 (armed, unclaimed; responders claim
    /// with a remote CAS on it, and the read-then-reset below is atomic in
    /// the cooperative simulation) and no chunk of this transfer has been
    /// applied — so a partially-applied snapshot can never be abandoned.
    fn state_transfer_abortable(&mut self, abort: &dyn Fn() -> bool) -> Option<u64> {
        let shared = &self.shared;
        let metrics = &shared.cluster.metrics;
        metrics.transfers_started.fetch_add(1, Ordering::Relaxed);
        let t0 = sim::now();
        let my_sync = shared.layout.sync_slot(shared.idx);
        let slots = self.cfg().transfer_slots;
        'retry: loop {
            let from = shared.completed_req.load(Ordering::SeqCst);
            {
                let mut prog = shared.transfer.lock();
                prog.expected = 1;
                prog.bytes = 0;
                prog.native_bytes = 0;
                prog.stream_bound = None;
            }
            // Zero the staging ring stamps so stale chunks are not
            // re-applied.
            for k in 1..=slots as u64 {
                let slot = shared.layout.ring_slot(k, slots, self.cfg().transfer_chunk);
                let _ = shared.node.local_write_word(slot, 0);
            }
            let _ = shared.node.local_write_word(shared.layout.applied, 0);
            // Lines 2–4: write (from, status=1) into our entry on every
            // group member.
            let entry = encode_sync(from, 1);
            loop {
                for q in 0..self.n() {
                    let target = shared.peer(shared.partition, q);
                    if target.id() == shared.node.id() {
                        let _ = shared.node.local_write(my_sync, &entry);
                    } else {
                        let _ = shared.qp(&target).post_write(my_sync, entry.to_vec());
                    }
                }
                // Line 5: wait for a responder to flip status back to 0
                // (the low bits; the high bits carry the chunk count).
                let done = shared.node.poll_until_timeout(
                    || {
                        shared
                            .node
                            .local_read_word(my_sync.offset(8))
                            .map(|st| st & 3 == 0)
                            .unwrap_or(false)
                    },
                    self.cfg().transfer_timeout,
                );
                if done {
                    break;
                }
                if abort() {
                    let status = shared.node.local_read_word(my_sync.offset(8)).unwrap_or(0);
                    let untouched = {
                        let prog = shared.transfer.lock();
                        prog.stream_bound.is_none() && prog.bytes == 0
                    };
                    if status == 1 && untouched {
                        // Withdraw: reset our own status word first (kills
                        // any in-flight responder claim — the CAS on it
                        // will now fail), then clear our entry on every
                        // peer so their serve loops stop raising it.
                        let _ = shared.node.local_write(my_sync, &encode_sync(0, 0));
                        shared.transfer.lock().expected = 0;
                        let clear = encode_sync(0, 0);
                        for q in 0..self.n() {
                            let target = shared.peer(shared.partition, q);
                            if target.id() != shared.node.id() {
                                let _ = shared.qp(&target).post_write(my_sync, clear.to_vec());
                            }
                        }
                        return None;
                    }
                }
                // Timeout: the selected responder may have failed; re-arm
                // (the rotation on the responder side picks the next one).
            }
            // Every chunk landed before the status flip (FIFO), but the
            // service process still needs time to *apply* them — wait for
            // it. A timeout here means a racing responder's stale chunk
            // clobbered one of ours: redo the transfer.
            let chunks = shared
                .node
                .local_read_word(my_sync.offset(8))
                .expect("own sync word")
                >> 2;
            let applied = shared.node.poll_until_timeout(
                || shared.transfer.lock().expected > chunks,
                self.cfg().transfer_timeout,
            );
            if !applied {
                continue 'retry;
            }
            // Race-detector edge: read the applied watermark — the service
            // process's last instrumented write — so every chunk it applied
            // happens-before our subsequent execution and coordination
            // writes (and, transitively, before any remote reader that
            // observes our next coordination entry). Free when the
            // detector is off: a local read costs no virtual time.
            let _ = shared.node.local_read_word(shared.layout.applied);
            // Line 6: adopt the responder's request id — but only if it
            // matches the stream we actually applied. A mismatch means two
            // responders raced (one was slow, the rotation fired) and we
            // may hold a mix of their snapshots; redo the transfer from
            // our current position.
            let rid = shared.node.local_read_word(my_sync).expect("own sync word");
            let stream = {
                let mut prog = shared.transfer.lock();
                prog.expected = 0; // disarm: late chunks are dropped
                prog.stream_bound
            };
            if let Some(bound) = stream {
                if bound != rid {
                    continue 'retry;
                }
            }
            shared.exec_trace.lock().push((rid, 't'));
            let cur = shared.last_req.load(Ordering::SeqCst);
            shared.last_req.store(cur.max(rid), Ordering::SeqCst);
            let curc = shared.completed_req.load(Ordering::SeqCst);
            shared.completed_req.store(curc.max(rid), Ordering::SeqCst);
            let prog = shared.transfer.lock();
            metrics.transfers.lock().push(TransferRecord {
                bytes: prog.bytes,
                duration_ns: (sim::now() - t0).as_nanos() as u64,
                native_bytes: prog.native_bytes,
            });
            return Some(rid);
        }
    }

    /// Responder side of Algorithm 3 (lines 7–22): serve pending state
    /// transfers whose rotation turn has reached us.
    fn serve_transfers(&mut self) {
        let shared = Arc::clone(&self.shared);
        let n = self.n();
        // Drop bookkeeping for requests that were completed by someone.
        let pending: std::collections::HashSet<(usize, u64)> =
            pending_sync_requests(&shared).into_iter().collect();
        self.seen_requests.retain(|k, _| pending.contains(k));
        for p in 0..n {
            if p == shared.idx {
                continue;
            }
            let slot = shared.layout.sync_slot(p);
            let status = shared.node.local_read_word(slot.offset(8)).unwrap_or(0);
            if status != 1 {
                continue;
            }
            let from = shared.node.local_read_word(slot).unwrap_or(0);
            let first_seen = *self.seen_requests.entry((p, from)).or_insert_with(sim::now);
            // Deterministic rotation: requester+1 serves immediately, the
            // next waits one timeout, and so on (line 10 + lines 19–22).
            let my_rank = (shared.idx + n - p - 1) % n;
            let due = first_seen + self.cfg().transfer_timeout * my_rank as u32;
            if sim::now() < due {
                continue;
            }
            self.respond_transfer(p, from);
            self.seen_requests.remove(&(p, from));
        }
    }

    /// Streams our state since `from` to the requester in 32 KiB chunks,
    /// then clears the status entry everywhere (lines 11–18).
    fn respond_transfer(&self, requester: usize, from: u64) {
        let shared = &self.shared;
        let cfg = self.cfg();
        // Claim the transfer with a remote CAS on the requester's status
        // word (1 → 2): exactly one responder streams at a time, even if
        // the rotation timeout fires while a slow responder is mid-stream.
        let target = shared.peer(shared.partition, requester);
        let status_addr = shared.layout.sync_slot(requester).offset(8);
        match shared.qp(&target).compare_and_swap(status_addr, 1, 2) {
            Ok(1) => {}
            _ => return, // claimed by someone else, completed, or crashed
        }
        // Snapshot at a request boundary.
        shared.node.poll_until_timeout(
            || !shared.in_write_phase.load(Ordering::SeqCst),
            cfg.transfer_timeout,
        );
        let bound = shared.completed_req.load(Ordering::SeqCst);
        // Line 12: the update log bounds what must be synchronized.
        let oids: BTreeSet<ObjectId> = shared
            .log
            .lock()
            .iter()
            .filter(|(ts, _)| *ts > from)
            .map(|(_, oid)| *oid)
            .collect();
        let qp = shared.qp(&target);
        let app = &shared.cluster.app;
        let chunk_cap = cfg.transfer_chunk;
        let mut chunk_body: Vec<u8> = Vec::with_capacity(chunk_cap);
        let mut stamp = 1u64;
        // Flushes one chunk. Returns `false` — abandoning the serve — if
        // the requester stops applying (its staging ring was poisoned by a
        // stale chunk of an earlier aborted transfer, or it crashed). The
        // requester's retry loop re-arms the request and the rotation will
        // serve it again; never spin on a wedged receiver, or the whole
        // partition loses this replica.
        let flush = |body: &mut Vec<u8>, stamp: &mut u64| -> bool {
            if body.is_empty() {
                return true;
            }
            // Flow control: never run more than the ring size ahead of the
            // requester's applied counter.
            if *stamp > cfg.transfer_slots as u64 {
                let deadline = sim::now() + cfg.transfer_timeout;
                let watermark = loop {
                    let Ok(applied) = qp.read_word(shared.layout.applied) else {
                        return false; // requester crashed
                    };
                    if *stamp <= applied + cfg.transfer_slots as u64 {
                        break applied;
                    }
                    if sim::now() >= deadline {
                        return false; // no progress: abandon this serve
                    }
                };
                // Protocol lint (regression guard): posting past the
                // applied watermark would overwrite a staged chunk the
                // requester's service has not consumed yet — it would land
                // inside the requester's live read window. The wait above
                // makes this unreachable; the lint keeps its own
                // comparison so it trips immediately if a change ever
                // breaks the flow-control condition.
                if let Some(det) = shared.cluster.detector.as_ref() {
                    if *stamp > watermark + cfg.transfer_slots as u64 {
                        let slot = shared
                            .layout
                            .ring_slot(*stamp, cfg.transfer_slots, chunk_cap);
                        det.report_lint(
                            "state-transfer chunk overlaps a live read window",
                            &target,
                            "ring",
                            (slot.0, slot.0 + (CHUNK_HDR + chunk_cap) as u64),
                            None,
                            format!(
                                "chunk {} posted while the requester had only applied \
                                 {} of a {}-slot staging ring",
                                *stamp, watermark, cfg.transfer_slots
                            ),
                        );
                    }
                }
            }
            let mut buf = Vec::with_capacity(CHUNK_HDR + body.len());
            buf.extend_from_slice(&stamp.to_le_bytes());
            buf.extend_from_slice(&(body.len() as u64).to_le_bytes());
            buf.extend_from_slice(&bound.to_le_bytes());
            buf.extend_from_slice(body);
            let slot = shared
                .layout
                .ring_slot(*stamp, cfg.transfer_slots, chunk_cap);
            let _ = qp.post_write(slot, buf);
            *stamp += 1;
            body.clear();
            true
        };
        for oid in oids {
            let Some(slot) = shared.store.slot(oid) else {
                continue;
            };
            let raw = shared.store.raw_slot_bytes(slot);
            // Native objects must be serialized before shipping
            // (paper §V-E2, second scenario).
            if app.storage_kind(oid) == StorageKind::Native {
                sim::sleep_ns(raw.len() as u64 * cfg.ser_ns_per_kib / 1024);
            }
            let record = encode_record(oid, &raw);
            if chunk_body.len() + record.len() > chunk_cap && !flush(&mut chunk_body, &mut stamp) {
                return;
            }
            assert!(
                record.len() <= chunk_cap,
                "object slot larger than a transfer chunk; raise transfer_chunk"
            );
            chunk_body.extend_from_slice(&record);
        }
        if !flush(&mut chunk_body, &mut stamp) {
            return;
        }
        // Lines 16–17: announce completion to the whole group. FIFO RC
        // delivery guarantees the requester sees every chunk before the
        // status flip; the chunk count rides in the status word's high
        // bits so the requester can wait until its service process has
        // *applied* them all (application costs time for natively-stored
        // objects).
        let chunks = stamp - 1;
        let entry = encode_sync(bound, chunks << 2);
        let sync = shared.layout.sync_slot(requester);
        for q in 0..self.n() {
            let t = shared.peer(shared.partition, q);
            if t.id() == shared.node.id() {
                let _ = shared.node.local_write(sync, &entry);
            } else {
                let _ = shared.qp(&t).post_write(sync, entry.to_vec());
            }
        }
    }
}

/// Builds the dual-version slot image that results from applying the
/// paper's `set()` rule (overwrite the smaller-timestamp version) to a
/// remotely-read slot — what the active-only mode writes back to passive
/// replicas. Deterministic: racing writers with the same reads produce
/// byte-identical images.
fn encode_slot_image(
    versions: &crate::store::SlotVersions,
    new_value: &[u8],
    ts: Timestamp,
    cap: usize,
) -> Vec<u8> {
    assert!(
        new_value.len() <= cap,
        "active-only remote write exceeds the remote slot capacity"
    );
    let encode_one = |buf: &mut Vec<u8>, tmp: Timestamp, data: &[u8]| {
        buf.extend_from_slice(&tmp.raw().to_le_bytes());
        buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
        buf.extend_from_slice(data);
        buf.extend(std::iter::repeat_n(0u8, cap - data.len()));
    };
    let mut buf = Vec::with_capacity(2 * (16 + cap));
    let victim_is_a = versions.a.0 <= versions.b.0;
    if victim_is_a {
        encode_one(&mut buf, ts, new_value);
        encode_one(&mut buf, versions.b.0, &versions.b.1);
    } else {
        encode_one(&mut buf, versions.a.0, &versions.a.1);
        encode_one(&mut buf, ts, new_value);
    }
    buf
}

/// [`LocalReader`] backed by the executing replica's store.
struct StoreReader<'a> {
    shared: &'a ReplicaShared,
}

impl LocalReader for StoreReader<'_> {
    fn read(&self, oid: ObjectId) -> Option<Bytes> {
        match self.shared.cluster.app.placement(oid) {
            Placement::Replicated => {}
            Placement::Partition(h) if h == self.shared.partition => {}
            Placement::Partition(_) => return None,
        }
        self.shared.store.get(oid).map(|(_, v)| v)
    }
}

/// Reads the replica's own coordination memory and returns, per involved
/// partition, `(matching, satisfied-majority, satisfied-everyone)` — free
/// function so the phase-2 barrier can be re-checked from inside the
/// state-transfer fallback without re-borrowing the executor.
pub(crate) fn coord_status(
    shared: &ReplicaShared,
    dests: &[PartitionId],
    ts: Timestamp,
    phase: u64,
) -> (HashMap<PartitionId, Vec<usize>>, bool, bool) {
    let n = shared.cluster.cfg.replicas_per_partition;
    let majority = shared.cluster.cfg.majority();
    let mut matching: HashMap<PartitionId, Vec<usize>> = HashMap::new();
    let mut all_majority = true;
    let mut all_everyone = true;
    for &h in dests {
        let mut ok = 0usize;
        let mut m = Vec::new();
        for q in 0..n {
            let slot = shared.layout.coord_slot(h.0 as usize, q, n);
            let tmp = shared.node.local_read_word(slot).unwrap_or(0);
            let ph = shared.node.local_read_word(slot.offset(8)).unwrap_or(0);
            if tmp == ts.raw() && ph >= phase {
                ok += 1;
                m.push(q);
            } else if tmp > ts.raw() {
                ok += 1;
            }
        }
        if ok < majority {
            all_majority = false;
        }
        if ok < n {
            all_everyone = false;
        }
        matching.insert(h, m);
    }
    (matching, all_majority, all_everyone)
}

/// The `(requester idx, from_tmp)` of every state-transfer request
/// currently raised in this replica's statesync memory.
pub(crate) fn pending_sync_requests(shared: &ReplicaShared) -> Vec<(usize, u64)> {
    let n = shared.cluster.cfg.replicas_per_partition;
    (0..n)
        .filter(|&p| p != shared.idx)
        .filter_map(|p| {
            let slot = shared.layout.sync_slot(p);
            let status = shared.node.local_read_word(slot.offset(8)).unwrap_or(0);
            (status == 1).then(|| (p, shared.node.local_read_word(slot).unwrap_or(0)))
        })
        .collect()
}
