//! The replica service process.
//!
//! Colocated with the executor, this process plays the roles a real Heron
//! replica handles off the critical path:
//!
//! * answering **object-address queries** (Algorithm 2, lines 8–13) —
//!   read-only lookups, so they are safe to serve even while the executor
//!   is blocked in a coordination phase (which is also necessary: two
//!   partitions reading from each other mid-request must answer each
//!   other's queries);
//! * absorbing **address replies** into the shared `object_map` and waking
//!   the executor through the doorbell;
//! * **applying inbound state-transfer chunks** while the executor is
//!   blocked waiting for the transfer to complete, charging the modeled
//!   deserialization cost for natively-stored objects (paper §V-E2).

use crate::cluster::ReplicaShared;
use crate::layout::{decode_records, decode_rpc, encode_rpc, Rpc, CHUNK_HDR};
use crate::types::StorageKind;
use amcast::Timestamp;
use std::sync::Arc;
use std::time::Duration;

/// A replica's service process.
pub(crate) struct Service {
    shared: Arc<ReplicaShared>,
}

impl Service {
    pub(crate) fn new(shared: Arc<ReplicaShared>) -> Self {
        Service { shared }
    }

    /// Runs the service loop forever.
    pub(crate) fn run(self) {
        let shared = &self.shared;
        loop {
            if !shared.node.is_alive() {
                shared
                    .node
                    .poll_until_timeout(|| shared.node.is_alive(), Duration::from_millis(1));
                continue;
            }
            while let Some(msg) = shared.node.try_recv() {
                self.handle_rpc(msg.from, &msg.payload);
            }
            self.apply_chunks();
            let node = shared.node.clone();
            let shared2 = Arc::clone(shared);
            node.poll_until(move || shared2.node.pending_messages() > 0 || chunk_ready(&shared2));
        }
    }

    fn handle_rpc(&self, from: rdma_sim::NodeId, payload: &[u8]) {
        let shared = &self.shared;
        match decode_rpc(payload) {
            Some(Rpc::AddrQuery { oid }) => {
                let slot = shared.store.slot(oid).map(|s| (s.addr, s.cap));
                let reply = encode_rpc(&Rpc::AddrReply { oid, slot });
                let target = shared.cluster.fabric.node(from);
                let _ = shared.qp(&target).send(reply);
            }
            Some(Rpc::AddrReply { oid, slot }) => {
                if let Some((addr, cap)) = slot {
                    shared.object_map.lock().insert((oid, from), (addr, cap));
                }
                shared.addr_heard.lock().entry(oid).or_default().push(from);
                shared.ring_doorbell();
            }
            None => {}
        }
    }

    /// Applies staged state-transfer chunks in stamp order, bumping the
    /// `applied` counter the responder uses for flow control.
    fn apply_chunks(&self) {
        let shared = &self.shared;
        let cfg = &shared.cluster.cfg;
        loop {
            let expected = shared.transfer.lock().expected;
            if expected == 0 {
                return; // no transfer in progress
            }
            let slot = shared
                .layout
                .ring_slot(expected, cfg.transfer_slots, cfg.transfer_chunk);
            let stamp = shared.node.local_read_word(slot).unwrap_or(0);
            if stamp != expected {
                return;
            }
            // Stream coherence: if two responders raced, apply only the
            // stream the first chunk came from; a chunk from the other
            // stream is left in place until the right responder rewrites
            // the slot.
            let bound = shared.node.local_read_word(slot.offset(16)).unwrap_or(0);
            {
                let mut prog = shared.transfer.lock();
                match prog.stream_bound {
                    None => prog.stream_bound = Some(bound),
                    Some(b) if b != bound => return,
                    _ => {}
                }
            }
            let nbytes = shared.node.local_read_word(slot.offset(8)).unwrap_or(0) as usize;
            let body = shared
                .node
                .local_read(slot.offset(CHUNK_HDR as u64), nbytes)
                .expect("chunk body in range");
            let mut native = 0u64;
            for (oid, raw) in decode_records(&body) {
                if shared.cluster.app.storage_kind(oid) == StorageKind::Native {
                    native += raw.len() as u64;
                }
                shared.store.apply_raw_slot(oid, raw);
                // Record the sync in our own update log so we can serve a
                // future lagger ourselves.
                if let Some(s) = shared.store.slot(oid) {
                    let (ts, _) = shared.store.read_slot(s).latest();
                    if ts != Timestamp::ZERO {
                        shared.log.lock().push((ts.raw(), oid));
                    }
                }
            }
            // Deserialization cost for natively-stored objects.
            if native > 0 {
                sim::sleep_ns(native * cfg.deser_ns_per_kib / 1024);
            }
            {
                let mut prog = shared.transfer.lock();
                prog.bytes += nbytes as u64;
                prog.native_bytes += native;
                prog.expected += 1;
            }
            let _ = shared
                .node
                .local_write_word(shared.layout.applied, expected);
        }
    }
}

/// Whether the next expected transfer chunk is staged.
fn chunk_ready(shared: &ReplicaShared) -> bool {
    let cfg = &shared.cluster.cfg;
    let (expected, stream_bound) = {
        let prog = shared.transfer.lock();
        (prog.expected, prog.stream_bound)
    };
    if expected == 0 {
        return false;
    }
    let slot = shared
        .layout
        .ring_slot(expected, cfg.transfer_slots, cfg.transfer_chunk);
    if shared.node.local_read_word(slot).unwrap_or(0) != expected {
        return false;
    }
    // Mirrors `apply_chunks`' stream-coherence gate exactly: a racing
    // responder's chunk is left in the slot unconsumed until the owning
    // stream rewrites it, so counting it as work here would make the
    // service loop spin in zero virtual time without ever blocking (the
    // PR 8 `has_work` bug class — the rewriter never gets scheduled).
    match stream_bound {
        Some(b) => shared.node.local_read_word(slot.offset(16)).unwrap_or(0) == b,
        None => true,
    }
}
