//! The Heron client: closed-loop request execution.

use crate::cluster::{ClientInfo, ClusterInner, HeronCluster};
use crate::layout::{encode_envelope, resp_slot, RESP_HDR};
use crate::types::PartitionId;
use amcast::{GroupId, McastClient, MsgId};
use bytes::Bytes;
use rdma_sim::{Addr, Node};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A closed-loop Heron client.
///
/// `execute` multicasts the request to the involved partitions (asking the
/// application's [`crate::StateMachine::destinations`]), then waits for a
/// response from one server in each involved partition — exactly how the
/// paper's clients measure latency (§V-B). Unanswered requests are
/// re-multicast with the same message id after `client_retry`.
pub struct HeronClient {
    cluster: Arc<ClusterInner>,
    node: Node,
    id: u64,
    seq: u64,
    resp_base: Addr,
    mcast: McastClient,
}

impl fmt::Debug for HeronClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeronClient")
            .field("id", &self.id)
            .field("seq", &self.seq)
            .finish()
    }
}

impl HeronClient {
    pub(crate) fn attach(cluster: &HeronCluster, name: String) -> Self {
        let inner = Arc::clone(&cluster.inner);
        let node = inner.fabric.add_node(format!("client-{name}"));
        let id = inner.client_counter.fetch_add(1, Ordering::SeqCst);
        let resp_base = node.alloc_bytes(
            inner.cfg.partitions
                * inner.cfg.replicas_per_partition
                * (RESP_HDR + inner.cfg.max_response),
        );
        inner.clients.lock().insert(
            id,
            ClientInfo {
                node: node.id(),
                resp_base,
            },
        );
        let mcast = inner.mcast.client(&node);
        HeronClient {
            cluster: inner,
            node,
            id,
            seq: 0,
            resp_base,
            mcast,
        }
    }

    /// This client's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The sequence number of the last issued request (0 before the
    /// first).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Executes one request and blocks until every involved partition has
    /// responded; returns the response of the lowest-numbered involved
    /// partition. Records the end-to-end latency in the cluster metrics.
    ///
    /// # Panics
    ///
    /// Panics if the application maps the request to no partition, or if
    /// the request exceeds the configured maximum size.
    pub fn execute(&mut self, request: &[u8]) -> Bytes {
        let mut dests = self.cluster.app.destinations(request);
        dests.sort_unstable();
        dests.dedup();
        self.execute_on(request, &dests)
    }

    /// Like [`HeronClient::execute`] with an explicit destination set
    /// (used by workloads that pre-compute request routing).
    pub fn execute_on(&mut self, request: &[u8], dests: &[PartitionId]) -> Bytes {
        assert!(!dests.is_empty(), "request must involve ≥ 1 partition");
        assert!(
            request.len() <= self.cluster.cfg.max_request,
            "request exceeds HeronConfig::max_request"
        );
        self.seq += 1;
        let seq = self.seq;
        let t0 = sim::now();
        // Root span of the request's trace: begins at the same instant as
        // the latency measurement (t0); the message uid — the key every
        // other layer correlates on — is attached once multicast returns.
        let mut req_span =
            sim::trace::span_args("client.request", 0, &[("client", self.id), ("seq", seq)]);
        let envelope = encode_envelope(self.id, seq, t0.as_nanos(), request);
        let groups: Vec<GroupId> = dests.iter().map(|p| p.group()).collect();
        let uid: MsgId = self.mcast.multicast(&groups, &envelope);
        req_span.set_corr(u64::from(uid.0));
        // Wait for a response from one server in each involved partition.
        let retry = self.cluster.cfg.client_retry;
        loop {
            let done = self
                .node
                .poll_until_timeout(|| self.all_answered(dests, seq), retry);
            if done {
                break;
            }
            if std::env::var("HERON_DBG_CLIENT").is_ok() {
                let missing: Vec<u16> = dests
                    .iter()
                    .filter(|p| self.answered_slot(**p, seq).is_none())
                    .map(|p| p.0)
                    .collect();
                eprintln!(
                    "[{}] client {} retrying seq={seq} uid={uid:?} missing partitions {missing:?}",
                    sim::now(),
                    self.id
                );
            }
            // Retry: the believed leader of some group may have failed.
            self.mcast.resubmit(uid, &groups, &envelope);
        }
        // End the root span before measuring, so the traced span duration
        // and the recorded latency are the same number: the blame
        // analyzer's per-exemplar decomposition must sum to exactly the
        // histogram's value.
        drop(req_span);
        let latency = sim::now() - t0;
        // Tag the sample with the message uid — the same correlation key the
        // trace spans carry — so tail exemplars lead back to their spans.
        self.cluster
            .metrics
            .record_latency_tagged(latency, u64::from(uid.0));
        // Prefer the first partition with a non-empty response: in
        // active-only execution the passive partitions answer with empty
        // acknowledgments.
        for p in dests {
            let r = self.read_response(*p, seq);
            if !r.is_empty() {
                return r;
            }
        }
        self.read_response(dests[0], seq)
    }

    /// Whether some replica slot of partition `p` holds a response for
    /// `seq` — "a response from one server in each partition" (§V-B).
    fn answered_slot(&self, p: PartitionId, seq: u64) -> Option<Addr> {
        let cfg = &self.cluster.cfg;
        (0..cfg.replicas_per_partition).find_map(|r| {
            let slot = resp_slot(
                self.resp_base,
                p.0 as usize,
                r,
                cfg.replicas_per_partition,
                cfg.max_response,
            );
            (self.node.local_read_word(slot).unwrap_or(0) >= seq).then_some(slot)
        })
    }

    fn all_answered(&self, dests: &[PartitionId], seq: u64) -> bool {
        dests.iter().all(|p| self.answered_slot(*p, seq).is_some())
    }

    fn read_response(&self, p: PartitionId, seq: u64) -> Bytes {
        let slot = self.answered_slot(p, seq).expect("partition answered");
        let len = self
            .node
            .local_read_word(slot.offset(8))
            .expect("own response slot") as usize;
        Bytes::from(
            self.node
                .local_read(slot.offset(RESP_HDR as u64), len)
                .expect("own response slot"),
        )
    }
}
