//! Critical-path analysis over a virtual-time trace (see [`sim::trace`]).
//!
//! A request's trace forms a DAG: the client's `client.request` root span,
//! the ordering layer's `mcast.*` instants, and on every delivering replica
//! an `exec.request` span with `exec.phase2` / `exec.execute` /
//! `exec.phase4` children — all stitched together by the multicast message
//! uid (the events' `corr` key). This module walks that DAG two ways:
//!
//! * [`attribute`] averages the per-replica stage durations, reproducing
//!   the paper's Fig. 6 ordering/coordination/execution breakdown purely
//!   from spans — the legacy [`crate::Metrics::mean_breakdown`] counters
//!   become a cross-check for it (they must agree, since the phase spans
//!   open and close at the instants the counters sample).
//! * [`critical_paths`] explains individual requests: for each traced
//!   request it attributes the client-observed latency to ordering,
//!   the executor phases and the reply/other remainder, sorted slowest
//!   first — `trace_explain`'s top-k view.

use sim::trace::{EventKind, TraceEvent};
use std::collections::{BTreeMap, HashMap};

/// A Begin/End pair reassembled from the event stream.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span name (e.g. `"exec.request"`).
    pub name: &'static str,
    /// Track (process) it ran on.
    pub track: u32,
    /// Span id.
    pub id: u64,
    /// Enclosing span id (0 = top level).
    pub parent: u64,
    /// Begin time, virtual ns.
    pub t0: u64,
    /// End time, virtual ns (= `t0` for spans never closed).
    pub t1: u64,
    /// Correlation key: the max of the begin and end events' `corr`
    /// (`client.request` learns its uid only at multicast return).
    pub corr: u64,
    /// The begin event's args.
    pub args: Vec<(&'static str, u64)>,
}

impl Span {
    /// Span duration in virtual ns.
    pub fn dur_ns(&self) -> u64 {
        self.t1.saturating_sub(self.t0)
    }

    /// Looks up a begin-arg by name.
    pub fn arg(&self, name: &str) -> Option<u64> {
        self.args.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// Pairs Begin/End events into [`Span`]s (synchronous and flight spans
/// alike). Spans missing their End keep `t1 = t0`.
pub fn spans(events: &[TraceEvent]) -> Vec<Span> {
    let mut out: Vec<Span> = Vec::new();
    let mut open: HashMap<u64, usize> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::Begin | EventKind::FlightBegin => {
                open.insert(e.span, out.len());
                out.push(Span {
                    name: e.name,
                    track: e.track,
                    id: e.span,
                    parent: e.parent,
                    t0: e.t_ns,
                    t1: e.t_ns,
                    corr: e.corr,
                    args: e.args.to_vec(),
                });
            }
            EventKind::End | EventKind::FlightEnd => {
                if let Some(&i) = open.get(&e.span) {
                    out[i].t1 = out[i].t1.max(e.t_ns);
                    out[i].corr = out[i].corr.max(e.corr);
                }
            }
            EventKind::Instant => {}
        }
    }
    out
}

/// Mean per-stage attribution over the replicas' `exec.request` spans —
/// the trace-derived Fig. 6 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attribution {
    /// Samples averaged (replied `exec.request` spans).
    pub n: u64,
    /// Mean multicast-submit → delivery, ns.
    pub ordering_ns: u64,
    /// Mean delivery → executor-pickup dispatch wait (P-SMR pool), ns.
    /// Zero on the serial width-1 path. Carried as an `exec.request` arg,
    /// not a child span: dispatch waits of concurrent commands overlap
    /// across workers and would not nest as spans.
    pub parallel_ns: u64,
    /// Mean Phase 2 + Phase 4 barrier time, ns.
    pub coordination_ns: u64,
    /// Mean execution (read + compute + write), ns.
    pub execution_ns: u64,
}

/// Computes the mean stage attribution from a trace, over `exec.request`
/// spans whose replica actually replied (an `exec.reply` instant exists on
/// the same track with the same correlation key — exactly the condition
/// under which the legacy breakdown counter sampled). `partitions` filters
/// by the request's involvement count, like
/// [`crate::Metrics::mean_breakdown`].
pub fn attribute(events: &[TraceEvent], partitions: Option<u16>) -> Attribution {
    attribute_where(events, |p| {
        partitions.map(|f| p == u64::from(f)).unwrap_or(true)
    })
}

/// [`attribute`] with an arbitrary filter over the request's partition
/// count — e.g. `|p| p > 1` for the multi-partition aggregate that
/// [`crate::Metrics::mean_breakdown`]-style summaries report.
pub fn attribute_where(events: &[TraceEvent], keep: impl Fn(u64) -> bool) -> Attribution {
    let all = spans(events);
    let replied: std::collections::HashSet<(u32, u64)> = events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name == "exec.reply")
        .map(|e| (e.track, e.corr))
        .collect();
    // Child durations by (parent span id): phase2+phase4 vs execute.
    let mut coord: HashMap<u64, u64> = HashMap::new();
    let mut exec: HashMap<u64, u64> = HashMap::new();
    for s in &all {
        match s.name {
            "exec.phase2" | "exec.phase4" => *coord.entry(s.parent).or_default() += s.dur_ns(),
            "exec.execute" => *exec.entry(s.parent).or_default() += s.dur_ns(),
            _ => {}
        }
    }
    let mut a = Attribution::default();
    for s in all.iter().filter(|s| s.name == "exec.request") {
        if !replied.contains(&(s.track, s.corr)) {
            continue;
        }
        if !keep(s.arg("partitions").unwrap_or(0)) {
            continue;
        }
        a.n += 1;
        a.ordering_ns += s.arg("ordering_ns").unwrap_or(0);
        a.parallel_ns += s.arg("parallel_ns").unwrap_or(0);
        a.coordination_ns += coord.get(&s.id).copied().unwrap_or(0);
        a.execution_ns += exec.get(&s.id).copied().unwrap_or(0);
    }
    a.ordering_ns = a.ordering_ns.checked_div(a.n).unwrap_or(0);
    a.parallel_ns = a.parallel_ns.checked_div(a.n).unwrap_or(0);
    a.coordination_ns = a.coordination_ns.checked_div(a.n).unwrap_or(0);
    a.execution_ns = a.execution_ns.checked_div(a.n).unwrap_or(0);
    a
}

/// One latency segment of a request's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// Stage label.
    pub name: &'static str,
    /// Virtual ns attributed to the stage.
    pub ns: u64,
}

/// A single request's client-observed latency, decomposed along its
/// critical path.
#[derive(Debug, Clone)]
pub struct RequestPath {
    /// Correlation key (multicast uid).
    pub corr: u64,
    /// Issuing client's track.
    pub client_track: u32,
    /// Partitions the request involved.
    pub partitions: u64,
    /// Span id of the home partition's `exec.request` span the path
    /// follows (0 when the request was untraced) — the anchor the blame
    /// analyzer hangs nested wait spans off.
    pub home_span: u64,
    /// End-to-end latency (the `client.request` span), ns.
    pub total_ns: u64,
    /// Stage segments summing to `total_ns`.
    pub segments: Vec<PathSegment>,
}

/// Decomposes every traced request's end-to-end latency, slowest first.
///
/// The client waits for one reply per involved partition; the path shown
/// follows the *home* (lowest) partition's earliest-replying replica —
/// the replica whose reply the client-perceived latency actually tracks —
/// through ordering, the Phase 2 barrier, execution and the Phase 4
/// barrier, with everything else (reply flight, client polling, skew
/// against slower partitions) as the `reply+other` remainder.
pub fn critical_paths(events: &[TraceEvent]) -> Vec<RequestPath> {
    let all = spans(events);
    // Earliest exec.reply per (corr, track).
    let mut reply_at: HashMap<(u64, u32), u64> = HashMap::new();
    for e in events {
        if e.kind == EventKind::Instant && e.name == "exec.reply" {
            let t = reply_at.entry((e.corr, e.track)).or_insert(u64::MAX);
            *t = (*t).min(e.t_ns);
        }
    }
    let mut coord: HashMap<u64, (u64, u64)> = HashMap::new(); // parent → (p2, p4)
    let mut exec: HashMap<u64, u64> = HashMap::new();
    for s in &all {
        match s.name {
            "exec.phase2" => coord.entry(s.parent).or_default().0 += s.dur_ns(),
            "exec.phase4" => coord.entry(s.parent).or_default().1 += s.dur_ns(),
            "exec.execute" => *exec.entry(s.parent).or_default() += s.dur_ns(),
            _ => {}
        }
    }
    // Per corr: the replied exec.request span at the lowest involved
    // partition whose reply came first.
    let mut home: BTreeMap<u64, &Span> = BTreeMap::new();
    for s in all.iter().filter(|s| s.name == "exec.request") {
        if s.corr == 0 || !reply_at.contains_key(&(s.corr, s.track)) {
            continue;
        }
        let better = |cur: &&Span| -> bool {
            let (pa, pb) = (s.arg("partition"), cur.arg("partition"));
            if pa != pb {
                return pa < pb;
            }
            reply_at[&(s.corr, s.track)] < reply_at[&(cur.corr, cur.track)]
        };
        match home.get(&s.corr) {
            Some(cur) if !better(cur) => {}
            _ => {
                home.insert(s.corr, s);
            }
        }
    }
    let mut out: Vec<RequestPath> = Vec::new();
    for root in all.iter().filter(|s| s.name == "client.request") {
        if root.corr == 0 {
            continue;
        }
        let total = root.dur_ns();
        let mut segments = Vec::new();
        if let Some(h) = home.get(&root.corr) {
            let (p2, p4) = coord.get(&h.id).copied().unwrap_or((0, 0));
            let e = exec.get(&h.id).copied().unwrap_or(0);
            let ordering = h.arg("ordering_ns").unwrap_or(0);
            let parallel = h.arg("parallel_ns").unwrap_or(0);
            let accounted = ordering + parallel + p2 + e + p4;
            segments.push(PathSegment {
                name: "ordering",
                ns: ordering,
            });
            if parallel > 0 {
                segments.push(PathSegment {
                    name: "execute.parallel",
                    ns: parallel,
                });
            }
            if p2 + p4 > 0 {
                segments.push(PathSegment {
                    name: "phase2",
                    ns: p2,
                });
            }
            segments.push(PathSegment {
                name: "execute",
                ns: e,
            });
            if p2 + p4 > 0 {
                segments.push(PathSegment {
                    name: "phase4",
                    ns: p4,
                });
            }
            segments.push(PathSegment {
                name: "reply+other",
                ns: total.saturating_sub(accounted),
            });
        } else {
            segments.push(PathSegment {
                name: "untraced",
                ns: total,
            });
        }
        out.push(RequestPath {
            corr: root.corr,
            client_track: root.track,
            partitions: home
                .get(&root.corr)
                .and_then(|h| h.arg("partitions"))
                .unwrap_or(0),
            home_span: home.get(&root.corr).map(|h| h.id).unwrap_or(0),
            total_ns: total,
            segments,
        });
    }
    out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.corr.cmp(&b.corr)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        kind: EventKind,
        t_ns: u64,
        track: u32,
        span: u64,
        parent: u64,
        name: &'static str,
        corr: u64,
        args: &[(&'static str, u64)],
    ) -> TraceEvent {
        TraceEvent {
            t_ns,
            track,
            span,
            parent,
            kind,
            name,
            corr,
            args: sim::trace::SpanArgs::from_slice(args),
        }
    }

    /// A hand-built two-partition request: client latency 100, ordering
    /// 30, phase2 10, execute 25, phase4 15 at the home partition.
    fn sample_events() -> Vec<TraceEvent> {
        use EventKind::{Begin, End, Instant};
        vec![
            // Client root span: corr attached at end.
            ev(Begin, 0, 9, 1, 0, "client.request", 0, &[("client", 7)]),
            // Home partition (0), track 2.
            ev(
                Begin,
                30,
                2,
                2,
                0,
                "exec.request",
                5,
                &[("partition", 0), ("partitions", 2), ("ordering_ns", 30)],
            ),
            ev(Begin, 30, 2, 3, 2, "exec.phase2", 5, &[]),
            ev(End, 40, 2, 3, 2, "exec.phase2", 5, &[]),
            ev(Begin, 40, 2, 4, 2, "exec.execute", 5, &[]),
            ev(End, 65, 2, 4, 2, "exec.execute", 5, &[]),
            ev(Begin, 65, 2, 5, 2, "exec.phase4", 5, &[]),
            ev(End, 80, 2, 5, 2, "exec.phase4", 5, &[]),
            ev(Instant, 81, 2, 0, 2, "exec.reply", 5, &[]),
            ev(End, 82, 2, 2, 0, "exec.request", 5, &[]),
            // Other partition (1), track 4: slower, still replies.
            ev(
                Begin,
                35,
                4,
                6,
                0,
                "exec.request",
                5,
                &[("partition", 1), ("partitions", 2), ("ordering_ns", 35)],
            ),
            ev(Begin, 35, 4, 7, 6, "exec.phase2", 5, &[]),
            ev(End, 50, 4, 7, 6, "exec.phase2", 5, &[]),
            ev(Begin, 50, 4, 8, 6, "exec.execute", 5, &[]),
            ev(End, 70, 4, 8, 6, "exec.execute", 5, &[]),
            ev(Begin, 70, 4, 9, 6, "exec.phase4", 5, &[]),
            ev(End, 90, 4, 9, 6, "exec.phase4", 5, &[]),
            ev(Instant, 91, 4, 0, 6, "exec.reply", 5, &[]),
            ev(End, 92, 4, 6, 0, "exec.request", 5, &[]),
            // Client sees the reply at 100; corr learned by then.
            ev(End, 100, 9, 1, 0, "client.request", 5, &[]),
        ]
    }

    #[test]
    fn spans_pair_begin_and_end() {
        let s = spans(&sample_events());
        let root = s.iter().find(|s| s.name == "client.request").unwrap();
        assert_eq!(root.dur_ns(), 100);
        assert_eq!(root.corr, 5, "corr taken from the end event");
        let p2 = s
            .iter()
            .find(|s| s.name == "exec.phase2" && s.track == 2)
            .unwrap();
        assert_eq!((p2.parent, p2.dur_ns()), (2, 10));
    }

    #[test]
    fn attribution_averages_replied_requests() {
        let a = attribute(&sample_events(), Some(2));
        assert_eq!(a.n, 2);
        assert_eq!(a.ordering_ns, (30 + 35) / 2);
        assert_eq!(a.coordination_ns, (10 + 15 + 15 + 20) / 2);
        assert_eq!(a.execution_ns, (25 + 20) / 2);
        // No single-partition samples in this trace.
        assert_eq!(attribute(&sample_events(), Some(1)).n, 0);
    }

    #[test]
    fn unreplied_requests_are_excluded() {
        let mut events = sample_events();
        events.retain(|e| !(e.name == "exec.reply" && e.track == 4));
        let a = attribute(&events, None);
        assert_eq!(a.n, 1, "track 4 never replied (state transfer path)");
        assert_eq!(a.ordering_ns, 30);
    }

    #[test]
    fn critical_path_follows_home_partition() {
        let paths = critical_paths(&sample_events());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!((p.corr, p.total_ns, p.partitions), (5, 100, 2));
        let by_name: Vec<(&str, u64)> = p.segments.iter().map(|s| (s.name, s.ns)).collect();
        assert_eq!(
            by_name,
            [
                ("ordering", 30),
                ("phase2", 10),
                ("execute", 25),
                ("phase4", 15),
                ("reply+other", 20)
            ]
        );
        let sum: u64 = p.segments.iter().map(|s| s.ns).sum();
        assert_eq!(sum, p.total_ns, "segments account for the whole latency");
    }

    /// With an executor pool the `exec.request` span carries a
    /// `parallel_ns` arg (dispatch wait); it must surface as its own
    /// segment and the decomposition must still sum exactly.
    #[test]
    fn parallel_wait_is_attributed_and_sums_exactly() {
        use EventKind::{Begin, End, Instant};
        let events = vec![
            ev(Begin, 0, 9, 1, 0, "client.request", 0, &[]),
            ev(
                Begin,
                42,
                2,
                2,
                0,
                "exec.request",
                5,
                &[
                    ("partition", 0),
                    ("partitions", 1),
                    ("ordering_ns", 30),
                    ("parallel_ns", 12),
                ],
            ),
            ev(Begin, 42, 2, 3, 2, "exec.execute", 5, &[]),
            ev(End, 67, 2, 3, 2, "exec.execute", 5, &[]),
            ev(Instant, 68, 2, 0, 2, "exec.reply", 5, &[]),
            ev(End, 69, 2, 2, 0, "exec.request", 5, &[]),
            ev(End, 100, 9, 1, 0, "client.request", 5, &[]),
        ];
        let a = attribute(&events, Some(1));
        assert_eq!((a.n, a.ordering_ns, a.parallel_ns), (1, 30, 12));
        let paths = critical_paths(&events);
        let p = &paths[0];
        let by_name: Vec<(&str, u64)> = p.segments.iter().map(|s| (s.name, s.ns)).collect();
        assert_eq!(
            by_name,
            [
                ("ordering", 30),
                ("execute.parallel", 12),
                ("execute", 25),
                ("reply+other", 33)
            ]
        );
        let sum: u64 = p.segments.iter().map(|s| s.ns).sum();
        assert_eq!(sum, p.total_ns);
    }
}
