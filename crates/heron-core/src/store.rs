//! The dual-versioned object store.
//!
//! Every object occupies a fixed slot in RDMA-registered memory holding
//! **two** versions, each tagged with the timestamp of the request that
//! created it (paper §III-A):
//!
//! ```text
//! [ tmp_a | len_a | data_a (cap) | tmp_b | len_b | data_b (cap) ]
//! ```
//!
//! * `get` returns the version with the larger timestamp (what a replica
//!   reads locally, since it executes requests in delivery order);
//! * `set(v, tmp)` overwrites the version with the *smaller* timestamp —
//!   so a concurrent remote reader working on an earlier request can still
//!   find the version it needs;
//! * a remote reader fetches the whole slot with one RDMA read and picks
//!   the version with the largest timestamp smaller than its request's
//!   (Algorithm 2, line 22); if none exists, the reader has lagged behind
//!   and must state-transfer.

use crate::types::ObjectId;
use amcast::Timestamp;
use bytes::Bytes;
use parking_lot::Mutex;
use rdma_sim::{Addr, Node, RaceDetector, RegionKind};
use std::collections::HashMap;
use std::fmt;

/// Per-version header: timestamp word + length word.
pub(crate) const VERSION_HDR: usize = 16;

/// Extra slot capacity beyond the initial value size, allowing values to
/// grow a little without relocation (remote address maps cache slot
/// addresses, so slots never move).
const SLOT_HEADROOM: usize = 64;

/// Location and capacity of one object's slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Byte address of the slot in the owning node's registered memory.
    pub addr: Addr,
    /// Capacity of each version's data area, in bytes.
    pub cap: usize,
}

impl Slot {
    /// Total slot size in bytes (two versions).
    pub const fn size(&self) -> usize {
        2 * (VERSION_HDR + self.cap)
    }

    /// Computes the slot size for a given per-version capacity.
    pub const fn size_for_cap(cap: usize) -> usize {
        2 * (VERSION_HDR + cap)
    }
}

/// A decoded pair of versions, as fetched by a remote read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotVersions {
    /// First version: `(timestamp, value)`.
    pub a: (Timestamp, Bytes),
    /// Second version: `(timestamp, value)`.
    pub b: (Timestamp, Bytes),
}

impl SlotVersions {
    /// Decodes a raw slot image (as fetched by one RDMA read of the whole
    /// slot).
    ///
    /// # Panics
    ///
    /// Panics if `raw` is shorter than the slot layout implies.
    pub fn decode(raw: &[u8], cap: usize) -> Self {
        let one = VERSION_HDR + cap;
        let read_version = |chunk: &[u8]| {
            let tmp = u64::from_le_bytes(chunk[0..8].try_into().expect("tmp word"));
            let len = u64::from_le_bytes(chunk[8..16].try_into().expect("len word")) as usize;
            assert!(len <= cap, "corrupt slot: length exceeds capacity");
            (
                Timestamp::from_raw(tmp),
                Bytes::copy_from_slice(&chunk[VERSION_HDR..VERSION_HDR + len]),
            )
        };
        SlotVersions {
            a: read_version(&raw[..one]),
            b: read_version(&raw[one..2 * one]),
        }
    }

    /// The most recent version (larger timestamp) — the local-read rule.
    pub fn latest(&self) -> (Timestamp, &Bytes) {
        if self.a.0 >= self.b.0 {
            (self.a.0, &self.a.1)
        } else {
            (self.b.0, &self.b.1)
        }
    }

    /// The version a request with timestamp `r_tmp` may consistently read:
    /// the one with the largest timestamp strictly smaller than `r_tmp`
    /// (Algorithm 2, line 22). `None` means the reader lags behind.
    pub fn read_for(&self, r_tmp: Timestamp) -> Option<(Timestamp, &Bytes)> {
        let mut best: Option<(Timestamp, &Bytes)> = None;
        for (t, v) in [(self.a.0, &self.a.1), (self.b.0, &self.b.1)] {
            if t < r_tmp && best.map(|(bt, _)| t > bt).unwrap_or(true) {
                best = Some((t, v));
            }
        }
        best
    }
}

struct StoreInner {
    slots: HashMap<ObjectId, Slot>,
}

/// A replica's dual-versioned object store, backed by its node's
/// RDMA-registered memory.
pub struct VersionedStore {
    node: Node,
    inner: Mutex<StoreInner>,
    /// When set, slots are annotated [`RegionKind::DualSlot`] as they are
    /// allocated and [`VersionedStore::set`] lints the victim rule.
    detector: Option<RaceDetector>,
    /// Self-test switch: pick the *larger*-timestamp version as the
    /// victim, violating the dual-versioning rule remote readers rely on.
    break_victim_guard: bool,
}

impl fmt::Debug for VersionedStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionedStore")
            .field("objects", &self.inner.lock().slots.len())
            .finish()
    }
}

impl VersionedStore {
    /// Creates an empty store on `node`.
    pub fn new(node: Node) -> Self {
        VersionedStore {
            node,
            inner: Mutex::new(StoreInner {
                slots: HashMap::new(),
            }),
            detector: None,
            break_victim_guard: false,
        }
    }

    /// Attaches the race detector (and, for the detector's self-test, the
    /// broken-victim-guard switch). Call before any slot is created so the
    /// [`RegionKind::DualSlot`] annotations cover every slot; slots
    /// allocated earlier stay unannotated (and would be checked as plain
    /// data).
    pub fn instrument(&mut self, detector: RaceDetector, break_victim_guard: bool) {
        self.detector = Some(detector);
        self.break_victim_guard = break_victim_guard;
    }

    fn annotate_slot(&self, oid: ObjectId, slot: Slot) {
        if let Some(det) = &self.detector {
            det.annotate(
                &self.node,
                slot.addr,
                slot.size(),
                RegionKind::DualSlot,
                format!("slot:{oid}"),
            );
        }
    }

    /// Number of objects hosted.
    pub fn len(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Whether the store hosts no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slot of `oid`, if hosted here. Remote partitions learn slot
    /// addresses through the object-address query protocol.
    pub fn slot(&self, oid: ObjectId) -> Option<Slot> {
        self.inner.lock().slots.get(&oid).copied()
    }

    /// Ensures a slot exists for `oid` with at least `cap` bytes per
    /// version, allocating registered memory on first use. Returns the
    /// slot.
    pub fn ensure_slot(&self, oid: ObjectId, cap: usize) -> Slot {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.slots.get(&oid) {
            assert!(
                slot.cap >= cap,
                "value for {oid} outgrew its slot ({} > {}); slots cannot move",
                cap,
                slot.cap
            );
            return slot;
        }
        let cap = cap.div_ceil(8) * 8 + SLOT_HEADROOM;
        let slot = Slot {
            addr: self.node.alloc_bytes(Slot::size_for_cap(cap)),
            cap,
        };
        inner.slots.insert(oid, slot);
        drop(inner);
        self.annotate_slot(oid, slot);
        slot
    }

    /// Installs the initial version of an object (timestamp zero).
    pub fn bootstrap(&self, oid: ObjectId, value: &[u8]) {
        let slot = self.ensure_slot(oid, value.len());
        self.write_version(slot, 0, Timestamp::ZERO, value);
        // The second version also starts at zero with the same value, so
        // the dual-version invariants hold from the first write.
        self.write_version(slot, 1, Timestamp::ZERO, value);
    }

    /// Local read: the version with the larger timestamp (`object_list.get`
    /// in the paper).
    ///
    /// Returns `None` if the object is not hosted here.
    pub fn get(&self, oid: ObjectId) -> Option<(Timestamp, Bytes)> {
        let slot = self.slot(oid)?;
        let versions = self.read_slot(slot);
        let (t, v) = versions.latest();
        Some((t, v.clone()))
    }

    /// Local write for request timestamp `tmp`: overwrites the version with
    /// the smaller timestamp (`object_list.set` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds the slot capacity.
    pub fn set(&self, oid: ObjectId, value: &[u8], tmp: Timestamp) {
        let slot = self.ensure_slot(oid, value.len());
        assert!(
            value.len() <= slot.cap,
            "value for {oid} exceeds slot capacity"
        );
        let versions = self.read_slot(slot);
        let min_is_a = versions.a.0 <= versions.b.0;
        // The dual-versioning guard (paper §III-A): overwrite the version
        // with the SMALLER timestamp, so a concurrent remote reader
        // working on an earlier request can still find the version it
        // needs. `break_victim_guard` inverts the choice for the race
        // detector's self-test.
        let victim = if min_is_a != self.break_victim_guard {
            0
        } else {
            1
        };
        if let Some(det) = &self.detector {
            let (victim_ts, survivor_ts) = if victim == 0 {
                (versions.a.0, versions.b.0)
            } else {
                (versions.b.0, versions.a.0)
            };
            if victim_ts > survivor_ts {
                let one = VERSION_HDR + slot.cap;
                let start = slot.addr.offset((victim * one) as u64);
                det.report_lint(
                    "dual-version victim guard violated",
                    &self.node,
                    format!("slot:{oid}"),
                    (start.0, start.0 + one as u64),
                    det.last_writer(&self.node, start, one),
                    format!(
                        "set({oid}, tmp={}) overwrote the ACTIVE version (ts {}) while \
                         the older version (ts {}) survived; a concurrent remote reader \
                         picking the largest version below its own timestamp now races \
                         this write on the very bytes it targets",
                        tmp.raw(),
                        victim_ts.raw(),
                        survivor_ts.raw(),
                    ),
                );
            }
        }
        self.write_version(slot, victim, tmp, value);
    }

    /// Reads the full slot image (both versions) from local memory.
    pub fn read_slot(&self, slot: Slot) -> SlotVersions {
        let raw = self
            .node
            .local_read(slot.addr, slot.size())
            .expect("slot within registered memory");
        SlotVersions::decode(&raw, slot.cap)
    }

    /// All hosted object ids, sorted (diagnostics / consistency checker).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.inner.lock().slots.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Flips the first payload byte of **both** versions of `oid`'s slot,
    /// leaving timestamps and lengths intact — a deliberate corruption used
    /// by the consistency checker's self-test to prove the cross-replica
    /// checks fire. Has no visible effect on zero-length values.
    ///
    /// # Panics
    ///
    /// Panics if the object is not hosted here.
    pub fn corrupt(&self, oid: ObjectId) {
        let slot = self.slot(oid).expect("object hosted here");
        let mut raw = self.raw_slot_bytes(slot);
        let one = VERSION_HDR + slot.cap;
        raw[VERSION_HDR] ^= 0xFF;
        raw[one + VERSION_HDR] ^= 0xFF;
        self.apply_raw_slot(oid, &raw);
    }

    /// Raw slot bytes — what state transfer ships to a lagger.
    pub fn raw_slot_bytes(&self, slot: Slot) -> Vec<u8> {
        self.node
            .local_read(slot.addr, slot.size())
            .expect("slot within registered memory")
    }

    /// Overwrites the whole slot image (state-transfer apply on the
    /// lagger). Allocates the slot if the object is new to this replica.
    pub fn apply_raw_slot(&self, oid: ObjectId, raw: &[u8]) {
        let cap = (raw.len() - 2 * VERSION_HDR) / 2;
        let (slot, fresh) = {
            let mut inner = self.inner.lock();
            match inner.slots.entry(oid) {
                std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
                std::collections::hash_map::Entry::Vacant(e) => (
                    *e.insert(Slot {
                        addr: self.node.alloc_bytes(raw.len()),
                        cap,
                    }),
                    true,
                ),
            }
        };
        if fresh {
            self.annotate_slot(oid, slot);
        }
        assert_eq!(
            slot.cap, cap,
            "state-transfer slot shape mismatch for {oid}"
        );
        self.node
            .local_write(slot.addr, raw)
            .expect("slot within registered memory");
    }

    fn write_version(&self, slot: Slot, which: usize, tmp: Timestamp, value: &[u8]) {
        let base = slot.addr.offset((which * (VERSION_HDR + slot.cap)) as u64);
        let mut buf = Vec::with_capacity(VERSION_HDR + value.len());
        buf.extend_from_slice(&tmp.raw().to_le_bytes());
        buf.extend_from_slice(&(value.len() as u64).to_le_bytes());
        buf.extend_from_slice(value);
        self.node
            .local_write(base, &buf)
            .expect("slot within registered memory");
    }
}

/// The checkpoint hooks' view of a replica store: raw dual-version slot
/// images, byte-exact both ways.
impl crate::app::SnapshotStore for VersionedStore {
    fn object_ids(&self) -> Vec<ObjectId> {
        VersionedStore::object_ids(self)
    }

    fn raw_slot(&self, oid: ObjectId) -> Option<Vec<u8>> {
        self.slot(oid).map(|s| self.raw_slot_bytes(s))
    }

    fn install_slot(&self, oid: ObjectId, raw: &[u8]) {
        self.apply_raw_slot(oid, raw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcast::MsgId;
    use rdma_sim::{Fabric, LatencyModel};

    fn ts(clock: u64) -> Timestamp {
        Timestamp::new(clock, MsgId(clock as u32))
    }

    fn store() -> VersionedStore {
        let fabric = Fabric::new(LatencyModel::zero());
        VersionedStore::new(fabric.add_node("n"))
    }

    #[test]
    fn bootstrap_then_get() {
        let s = store();
        s.bootstrap(ObjectId(1), b"initial");
        let (t, v) = s.get(ObjectId(1)).unwrap();
        assert_eq!(t, Timestamp::ZERO);
        assert_eq!(v.as_ref(), b"initial");
        assert!(s.get(ObjectId(2)).is_none());
    }

    #[test]
    fn set_overwrites_older_version_and_keeps_previous() {
        let s = store();
        s.bootstrap(ObjectId(1), b"v0");
        s.set(ObjectId(1), b"v1", ts(10));
        // Latest is v1; the slot still holds a version readable by a
        // request between 0 and 10.
        let (t, v) = s.get(ObjectId(1)).unwrap();
        assert_eq!((t, v.as_ref()), (ts(10), b"v1".as_ref()));
        let versions = s.read_slot(s.slot(ObjectId(1)).unwrap());
        let (t5, v5) = versions.read_for(ts(5)).unwrap();
        assert_eq!((t5, v5.as_ref()), (Timestamp::ZERO, b"v0".as_ref()));
        // After a second write, version v0 is gone: v1 and v2 remain.
        s.set(ObjectId(1), b"v2", ts(20));
        let versions = s.read_slot(s.slot(ObjectId(1)).unwrap());
        assert_eq!(versions.read_for(ts(15)).unwrap().1.as_ref(), b"v1");
        assert_eq!(versions.read_for(ts(25)).unwrap().1.as_ref(), b"v2");
        // A reader needing something before v1 has lagged behind.
        assert!(versions.read_for(ts(10)).is_none());
    }

    #[test]
    fn read_for_boundary_is_strict() {
        let s = store();
        s.bootstrap(ObjectId(1), b"v0");
        s.set(ObjectId(1), b"v1", ts(10));
        let versions = s.read_slot(s.slot(ObjectId(1)).unwrap());
        // A request at exactly ts(10) must NOT see its own-timestamp write.
        let (t, _) = versions.read_for(ts(10)).unwrap();
        assert_eq!(t, Timestamp::ZERO);
    }

    #[test]
    fn dynamic_objects_allocate_slots() {
        let s = store();
        s.set(ObjectId(99), b"created", ts(3));
        let (t, v) = s.get(ObjectId(99)).unwrap();
        assert_eq!((t, v.as_ref()), (ts(3), b"created".as_ref()));
    }

    #[test]
    fn raw_slot_round_trips_between_stores() {
        let fabric = Fabric::new(LatencyModel::zero());
        let s1 = VersionedStore::new(fabric.add_node("a"));
        let s2 = VersionedStore::new(fabric.add_node("b"));
        s1.bootstrap(ObjectId(7), b"hello");
        s1.set(ObjectId(7), b"world", ts(4));
        let raw = s1.raw_slot_bytes(s1.slot(ObjectId(7)).unwrap());
        s2.apply_raw_slot(ObjectId(7), &raw);
        let (t, v) = s2.get(ObjectId(7)).unwrap();
        assert_eq!((t, v.as_ref()), (ts(4), b"world".as_ref()));
    }

    #[test]
    #[should_panic(expected = "outgrew")]
    fn oversized_values_panic() {
        let s = store();
        s.bootstrap(ObjectId(1), b"tiny");
        s.set(ObjectId(1), &vec![0u8; 4096], ts(1));
    }

    #[test]
    fn values_can_grow_within_headroom() {
        let s = store();
        s.bootstrap(ObjectId(1), b"tiny");
        s.set(ObjectId(1), &[7u8; 40], ts(1)); // within 64-byte headroom
        assert_eq!(s.get(ObjectId(1)).unwrap().1.len(), 40);
    }
}
