//! The request-execution engine and the P-SMR executor pool.
//!
//! [`ExecCore`] holds the per-command execution path of Algorithms 1 and 2
//! (Phase 2/4 barriers, the reading phase with dual-version remote reads,
//! compute + writing phase, and the client reply). It is shared by the
//! serial executor in [`crate::replica`] (which runs it on lane 0, exactly
//! as before the pool existed) and by the pool workers below.
//!
//! The pool (Marandi et al., "Rethinking State-Machine Replication for
//! Parallelism") replaces the single executor process with:
//!
//! * a **dispatcher** process — owns the delivery stream, computes each
//!   command's conflict key-set ([`crate::StateMachine::conflict_keys`]),
//!   and dispatches the *front* of the delivered queue to a free worker as
//!   soon as the front's keys are disjoint from every in-flight command's
//!   keys. Strict in-order dispatch keeps per-lane coordination entries
//!   monotone and means a conflicting predecessor always *finishes* on
//!   this replica before its successor starts anywhere on it — which is
//!   what makes the relaxed barrier reads below safe;
//! * N **worker** processes — each runs [`ExecCore::run_command`] on its
//!   own coordination *lane* (a private `(ts, phase)` entry per writer
//!   replica, see [`crate::layout::ReplicaLayout::coord_slot`]), replies to
//!   the client directly, and reports completion to the dispatcher.
//!
//! Workers never run the state-transfer protocol themselves: when one
//! starves on a Phase-2 barrier or observes it is lagging (Algorithm 2,
//! lines 23–25), it **parks** and the dispatcher resolves the stall — it
//! quiesces (stops dispatching, waits for running workers to finish or
//! park), runs the requester-side transfer of Algorithm 3 once nothing is
//! mid-command, and then tells each parked worker whether the adopted
//! snapshot covered its command (abandon, the client will retry) or not
//! (retry in place). Responder-side serves quiesce the same way, so the
//! snapshot bound `completed_req` is exact. `completed_req` itself becomes
//! a prefix watermark: the largest timestamp such that every dispatched
//! command up to it has finished its write phase.
//!
//! Dependency tracking is last-writer-in-delivery-order over the conflict
//! keys: because only the queue front dispatches, a command waits exactly
//! until every earlier conflicting command completed — equivalent to
//! chaining along the last-writer dependency graph of the delivered
//! prefix, without materializing the graph.

use crate::app::{Execution, LocalReader, ReadSet};
use crate::cluster::ReplicaShared;
use crate::layout::{decode_envelope, encode_coord, encode_response, resp_slot, COORD_ENTRY};
use crate::metrics::Breakdown;
use crate::replica::{
    coord_status, pending_sync_requests, respond_transfer, state_transfer, state_transfer_abortable,
};
use crate::types::{ObjectId, PartitionId, Placement};
use amcast::{mask_groups, Delivered, DeliveryEvent, Timestamp};
use bytes::Bytes;
use rand::Rng;
use sim::{Mailbox, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// The executing replica has fallen behind the fast majority and cannot
/// read consistent remote values; it must state-transfer (Algorithm 2,
/// lines 23–25).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Lagging;

/// Writes queued per target node, to be flushed in the same doorbell batch
/// as the next coordination entry for that node (batched mode only).
pub(crate) type PendingWrites = HashMap<rdma_sim::NodeId, Vec<(rdma_sim::Addr, Vec<u8>)>>;

/// How a stalled command resumes after the stall was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallOutcome {
    /// A state transfer adopted a snapshot that already includes this
    /// command: abandon it without replying (the client's retry will be
    /// skipped or re-executed consistently).
    Covered,
    /// Not covered: retry the stalled step.
    Retry,
}

/// What a command does when it cannot make progress. The serial executor
/// runs Algorithm 3 inline; pool workers park and let the dispatcher run
/// it after quiescing the pool.
pub(crate) trait StallHandler {
    /// The Phase-2 majority barrier starved past the transfer timeout.
    fn on_phase2_starved(&mut self, dests: &[PartitionId], ts: Timestamp) -> StallOutcome;
    /// A remote read found no version old enough (Algorithm 2, lines
    /// 23–25).
    fn on_lagging(&mut self, ts: Timestamp) -> StallOutcome;
    /// The command's write phase (and Phase 4, if any) finished; record it
    /// in `completed_req`. The serial executor stores the timestamp
    /// directly; the pool advances a prefix watermark instead.
    fn on_completed(&mut self, ts: Timestamp);
    /// Offers the handler the client reply. Returns `true` if the handler
    /// took ownership of posting it. The serial executor declines (the
    /// default) and [`ExecCore::reply`] posts directly; pool workers ship
    /// it to the dispatcher on their `Done` event, because each replica
    /// owns ONE response slot per client and two workers finishing
    /// different requests of the same client concurrently would race
    /// unordered writes into that slot (a lagging command could clobber a
    /// fresher reply). The dispatcher is the slot's single writer.
    fn on_reply(&mut self, _client_id: u64, _seq: u64, _response: &[u8]) -> bool {
        false
    }
}

/// The per-command execution path of Algorithms 1 and 2, bound to one
/// coordination lane of one replica.
pub(crate) struct ExecCore {
    pub(crate) shared: Arc<ReplicaShared>,
    /// Coordination lane this engine writes its `(ts, phase)` entries on:
    /// 0 for the serial executor, the worker index in the pool.
    pub(crate) lane: usize,
}

impl ExecCore {
    fn cfg(&self) -> &crate::HeronConfig {
        &self.shared.cluster.cfg
    }

    fn n(&self) -> usize {
        self.cfg().replicas_per_partition
    }

    /// Executes one delivered command end to end: decode, the
    /// single-partition fast path or the Phase 2 → execute → Phase 4
    /// pipeline, the client reply, and the Breakdown sample. `recv_ns` is
    /// the virtual time the command was taken off the delivery stream
    /// (equals "now" on the serial path; earlier than "now" by the queue
    /// wait in the pool — surfaced as the `execute.parallel` phase).
    ///
    /// Returns `false` if the command was abandoned because a state
    /// transfer covered it (no reply was sent).
    pub(crate) fn run_command(
        &self,
        d: &Delivered,
        recv_ns: u64,
        stalls: &mut dyn StallHandler,
    ) -> bool {
        let shared = &self.shared;
        let ts = d.ts;
        let (client_id, seq, submit_ns, payload) = {
            let (c, s, t, p) = decode_envelope(&d.payload);
            (c, s, t, p.to_vec())
        };
        let dests: Vec<PartitionId> = mask_groups(d.dests)
            .into_iter()
            .map(PartitionId::from)
            .collect();
        let ordering_ns = recv_ns.saturating_sub(submit_ns);
        let parallel_ns = sim::now().as_nanos().saturating_sub(recv_ns);
        // Whole-request span on this executor, correlated on the message
        // uid so one request stitches across partitions. The phase child
        // spans below open and close at the very instants the Breakdown
        // counters sample, so trace-derived attribution matches them
        // exactly (the Fig. 6 view over spans). The dispatch wait is not a
        // span of its own (overlapping waits across workers would not
        // nest); it rides as an arg, like the ordering stage.
        let uid = u64::from(d.id.0);
        let _req_span = sim::trace::span_args(
            "exec.request",
            uid,
            &[
                ("ts", ts.raw()),
                ("partition", u64::from(shared.partition.0)),
                ("partitions", dests.len() as u64),
                ("ordering_ns", ordering_ns),
                ("parallel_ns", parallel_ns),
            ],
        );

        // Lines 5–7: single-partition fast path — classic SMR.
        if dests.len() == 1 {
            let t0 = sim::now();
            let exec_span = sim::trace::span("exec.execute", uid);
            let reads = loop {
                match self.read_objects(&payload, ts, &dests, &[]) {
                    Ok(r) => break r,
                    Err(Lagging) => {
                        // Local-only reads cannot lag; defensive fallback.
                        match stalls.on_lagging(ts) {
                            StallOutcome::Covered => return false,
                            StallOutcome::Retry => {}
                        }
                    }
                }
            };
            let exec = self.execute_and_write(&payload, ts, &reads);
            let exec_ns = (sim::now() - t0).as_nanos() as u64;
            drop(exec_span);
            stalls.on_completed(ts);
            if !stalls.on_reply(client_id, seq, &exec.response) {
                self.reply(client_id, seq, &exec.response);
            }
            sim::trace::instant("exec.reply", uid);
            shared.cluster.metrics.record_breakdown(Breakdown {
                ordering_ns,
                parallel_ns,
                coordination_ns: 0,
                execution_ns: exec_ns,
                partitions: 1,
                at_partition: shared.partition.0,
            });
            return true;
        }

        // Lines 8–10: Phase 2 — barrier on a majority of every involved
        // partition. If the barrier starves, the peers' coordination
        // writes were lost while we were crashed (they ran this request
        // long ago): recover through state transfer instead of waiting
        // forever.
        let t_p2 = sim::now();
        let p2_span = sim::trace::span("exec.phase2", uid);
        self.write_coord(&dests, ts, 1);
        loop {
            if self.wait_coord_timeout(&dests, ts, 1, self.cfg().transfer_timeout) {
                break;
            }
            match stalls.on_phase2_starved(&dests, ts) {
                StallOutcome::Covered => return false, // transfer covered this request
                StallOutcome::Retry => {}
            }
        }
        let p2_ns = (sim::now() - t_p2).as_nanos() as u64;
        drop(p2_span);

        // Lines 11–13: execution (reading phase, compute, writing phase).
        // If we have lagged behind the fast majority, state-transfer; a
        // transfer whose snapshot already includes this request covers it
        // (it will be skipped via last_req), otherwise we caught up to a
        // point *before* this request and must still execute it.
        let t_exec = sim::now();
        let exec_span = sim::trace::span("exec.execute", uid);
        let mut pending_writes = PendingWrites::new();
        let active_only = self.cfg().execution_mode == crate::ExecutionMode::ActiveOnly;
        let active = shared
            .cluster
            .app
            .active_partition(&payload)
            .unwrap_or(dests[0]);
        let response = if active_only && active != shared.partition {
            // Passive partition (§III-D2 variant): the active partition
            // executes and writes our objects remotely. We only keep the
            // update log complete (our declared read set covers what the
            // active may write here) and acknowledge the client; the
            // FIFO link guarantees the active's object writes land before
            // its Phase-4 coordination entry does.
            let mut log = shared.log.lock();
            for oid in shared.cluster.app.read_set_at(shared.partition, &payload) {
                if shared.cluster.app.placement(oid) == Placement::Partition(shared.partition) {
                    log.push((ts.raw(), oid));
                }
            }
            Bytes::new()
        } else {
            let exec = loop {
                pending_writes.clear();
                let attempt = if active_only {
                    self.execute_active_only(&payload, ts, &dests, &mut pending_writes)
                } else {
                    self.read_objects(&payload, ts, &dests, &dests)
                        .map(|reads| self.execute_and_write(&payload, ts, &reads))
                };
                match attempt {
                    Ok(exec) => break exec,
                    Err(Lagging) => match stalls.on_lagging(ts) {
                        StallOutcome::Covered => return false, // transfer included this request
                        StallOutcome::Retry => {}
                    },
                }
            };
            exec.response
        };
        let exec_ns = (sim::now() - t_exec).as_nanos() as u64;
        drop(exec_span);

        // Lines 14–16: Phase 4 — same barrier, with the optional
        // wait-for-all delay (paper §V-E1). Queued active-only write-backs
        // ride the same doorbells.
        let t_p4 = sim::now();
        let p4_span = sim::trace::span("exec.phase4", uid);
        // Protocol lint (regression guard): the Phase-4 entry — which in
        // batched active-only mode carries the remote object write-backs —
        // must never be posted before the Phase-2 quorum was observed.
        // Coordination entries are monotone, so once the barrier above
        // passed this stays satisfied; a hit means a code change skipped
        // or reordered the Phase-2 wait.
        if let Some(det) = shared.cluster.detector.as_ref() {
            let (_, quorum, _) = coord_status(shared, &dests, ts, 1);
            if !quorum {
                let coord_len =
                    (self.cfg().partitions * self.n() * shared.layout.coord_width * COORD_ENTRY)
                        as u64;
                det.report_lint(
                    "Phase-2 write-back before quorum clock advanced",
                    &shared.node,
                    "coord",
                    (shared.layout.coord.0, shared.layout.coord.0 + coord_len),
                    None,
                    format!(
                        "posting the Phase-4 entry (and its queued write-backs) for ts {} \
                         while the Phase-2 majority barrier is not satisfied",
                        ts.raw()
                    ),
                );
            }
        }
        self.write_coord_with(&dests, ts, 2, pending_writes);
        self.wait_coord(&dests, ts, 2, self.cfg().wait_for_all);
        let p4_ns = (sim::now() - t_p4).as_nanos() as u64;
        drop(p4_span);

        stalls.on_completed(ts);
        // Line 17: reply.
        if !stalls.on_reply(client_id, seq, &response) {
            self.reply(client_id, seq, &response);
        }
        sim::trace::instant("exec.reply", uid);
        shared.cluster.metrics.record_breakdown(Breakdown {
            ordering_ns,
            parallel_ns,
            coordination_ns: p2_ns + p4_ns,
            execution_ns: exec_ns,
            partitions: dests.len() as u16,
            at_partition: shared.partition.0,
        });
        true
    }

    // ------------------------------------------------------------------
    // Algorithm 1: coordination.
    // ------------------------------------------------------------------

    /// Writes our coordination entry `(r.tmp, phase)` to every replica of
    /// every involved partition: smallest partition first, then by replica
    /// index — the order behind Table I's per-partition asymmetry.
    fn write_coord(&self, dests: &[PartitionId], ts: Timestamp, phase: u64) {
        self.write_coord_with(dests, ts, phase, PendingWrites::new());
    }

    /// [`Self::write_coord`] with queued object writes coalesced in: in
    /// batched mode (`max_batch > 1`) each target's pending writes and its
    /// coordination entry are flushed as ONE doorbell batch — the coord
    /// entry pushed last, so by the fabric's in-order application a peer
    /// that observes the barrier entry also observes every object write
    /// that preceded it (the invariant the passive execution path relies
    /// on, previously guaranteed by FIFO ordering of individual verbs).
    fn write_coord_with(
        &self,
        dests: &[PartitionId],
        ts: Timestamp,
        phase: u64,
        mut pending: PendingWrites,
    ) {
        let shared = &self.shared;
        let n = self.n();
        let batched = self.cfg().max_batch() > 1;
        let entry = encode_coord(ts.raw(), phase);
        let mut sorted = dests.to_vec();
        sorted.sort_unstable();
        for h in sorted {
            for q in 0..n {
                let target = shared.peer(h, q);
                let slot_on_target = self.layout_of(&target).coord_slot(
                    shared.partition.0 as usize,
                    shared.idx,
                    self.lane,
                    n,
                );
                if target.id() == shared.node.id() {
                    let _ = shared.node.local_write(slot_on_target, &entry);
                } else if batched {
                    let mut batch = shared.qp(&target).write_batch();
                    for (addr, buf) in pending.remove(&target.id()).unwrap_or_default() {
                        batch.push(addr, buf);
                    }
                    batch.push(slot_on_target, entry.to_vec());
                    let _ = batch.post();
                } else {
                    let _ = shared
                        .qp(&target)
                        .post_write(slot_on_target, entry.to_vec());
                }
            }
        }
        // Write-backs only target replicas of involved partitions, so the
        // barrier loop above must have drained everything.
        debug_assert!(
            pending.is_empty(),
            "queued writes must target barrier peers"
        );
    }

    fn layout_of(&self, node: &rdma_sim::Node) -> crate::layout::ReplicaLayout {
        // All replica nodes share the same allocation schedule, so the
        // layout of any replica equals ours.
        let _ = node;
        self.shared.layout
    }

    /// Like [`ExecCore::wait_coord`] but gives up after `timeout`; returns
    /// whether the majority barrier was reached.
    fn wait_coord_timeout(
        &self,
        dests: &[PartitionId],
        ts: Timestamp,
        phase: u64,
        timeout: Duration,
    ) -> bool {
        self.shared.node.poll_until_timeout(
            || {
                let (_, maj, _) = coord_status(&self.shared, dests, ts, phase);
                maj
            },
            timeout,
        )
    }

    /// Blocks until a majority of every involved partition has coordinated
    /// (Algorithm 1, lines 10/16). With `delta` set, additionally waits up
    /// to δ for *all* replicas, recording Table I's delay statistics.
    fn wait_coord(
        &self,
        dests: &[PartitionId],
        ts: Timestamp,
        phase: u64,
        delta: Option<Duration>,
    ) {
        let shared = &self.shared;
        shared.node.poll_until(|| {
            let (_, maj, _) = coord_status(shared, dests, ts, phase);
            maj
        });
        if let Some(delta) = delta {
            let stats = &shared.cluster.metrics.delays[shared.partition.0 as usize];
            stats.total.fetch_add(1, Ordering::Relaxed);
            let (_, _, everyone) = coord_status(shared, dests, ts, phase);
            if everyone {
                return;
            }
            stats.delayed.fetch_add(1, Ordering::Relaxed);
            let t0 = sim::now();
            shared.node.poll_until_timeout(
                || {
                    let (_, _, everyone) = coord_status(shared, dests, ts, phase);
                    everyone
                },
                delta,
            );
            let waited = (sim::now() - t0).as_nanos() as u64;
            stats.delay_sum_ns.fetch_add(waited, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 2: execution.
    // ------------------------------------------------------------------

    /// The reading phase: local objects from our store, remote objects via
    /// one-sided reads against replicas that coordinated in Phase 2.
    fn read_objects(
        &self,
        payload: &[u8],
        ts: Timestamp,
        _dests: &[PartitionId],
        coordinated: &[PartitionId],
    ) -> Result<ReadSet, Lagging> {
        let shared = &self.shared;
        let app = &shared.cluster.app;
        let mut reads = ReadSet::new();
        for oid in app.read_set_at(shared.partition, payload) {
            match app.placement(oid) {
                Placement::Replicated => {
                    let (_, v) = shared
                        .store
                        .get(oid)
                        .unwrap_or_else(|| panic!("replicated object {oid} missing"));
                    reads.insert(oid, v);
                }
                Placement::Partition(h) if h == shared.partition => {
                    let (_, v) = shared
                        .store
                        .get(oid)
                        .unwrap_or_else(|| panic!("local object {oid} missing"));
                    reads.insert(oid, v);
                }
                Placement::Partition(h) => {
                    debug_assert!(
                        coordinated.contains(&h),
                        "read set touches partition {h} the request was not multicast to"
                    );
                    let v = self.remote_read(oid, h, ts)?;
                    reads.insert(oid, v);
                }
            }
        }
        Ok(reads)
    }

    /// One remote read, with address discovery and failover (Algorithm 2,
    /// lines 8–27).
    fn remote_read(&self, oid: ObjectId, h: PartitionId, ts: Timestamp) -> Result<Bytes, Lagging> {
        let (versions, _cap) = self.remote_read_slot(oid, h, ts)?;
        match versions.read_for(ts) {
            Some((_, v)) => Ok(v.clone()),
            None => Err(Lagging), // lines 23–25
        }
    }

    /// Like [`ExecCore::remote_read`] but returns the whole dual-version
    /// slot image (used by the active-only execution mode, which must
    /// reconstruct remote slots when writing them back).
    fn remote_read_slot(
        &self,
        oid: ObjectId,
        h: PartitionId,
        ts: Timestamp,
    ) -> Result<(crate::store::SlotVersions, usize), Lagging> {
        let shared = &self.shared;
        loop {
            // Refresh the set of consistent candidates: replicas of h whose
            // coordination entry matches r.tmp (they executed everything
            // before r and have not moved past it).
            let (matching, _, _) = coord_status(shared, &[h], ts, 1);
            let candidates = matching.get(&h).cloned().unwrap_or_default();
            let candidates: Vec<usize> = candidates
                .into_iter()
                .filter(|&q| shared.peer(h, q).is_alive())
                .collect();
            if candidates.is_empty() {
                // Everyone readable has moved past r: we are the lagger.
                return Err(Lagging);
            }
            // Address discovery for candidates we don't know yet.
            let known: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&q| {
                    let node = shared.peer(h, q);
                    shared.object_map.lock().contains_key(&(oid, node.id()))
                })
                .collect();
            if known.is_empty() {
                self.query_addresses(oid, h, &candidates);
                continue;
            }
            // Line 15: pick a random coordinated replica.
            let pick = known[sim::with_rng(|r| r.gen_range(0..known.len()))];
            let target = shared.peer(h, pick);
            let (addr, cap) = *shared
                .object_map
                .lock()
                .get(&(oid, target.id()))
                .expect("known candidate has a cached address");
            let slot = crate::store::Slot { addr, cap };
            let t_issue = sim::now().as_nanos();
            match shared.qp(&target).read(addr, slot.size()) {
                Err(_) => {
                    // RDMA exception: the process failed; try another
                    // (lines 20–21). Drop the stale address mapping.
                    shared.object_map.lock().remove(&(oid, target.id()));
                    continue;
                }
                Ok(raw) => {
                    let versions = crate::store::SlotVersions::decode(&raw, cap);
                    let chosen_ts = match versions.read_for(ts) {
                        None => return Err(Lagging), // lines 23–25
                        Some((t, _)) => t,
                    };
                    self.audit_remote_slot_read(
                        &target, oid, addr, cap, &versions, chosen_ts, ts, t_issue,
                    );
                    return Ok((versions, cap));
                }
            }
        }
    }

    /// Protocol lint: adjudicates a completed remote slot read against the
    /// race detector's shadow state. The raw read of a dual-version slot
    /// is exempt from the generic check (it legitimately snapshots the
    /// version a concurrent writer is overwriting), so after decoding we
    /// check only the byte range of the version the reader actually
    /// *chose*: if its last writer has no happens-before edge to us, the
    /// dual-versioning discipline failed to protect this read.
    ///
    /// Two benign cases are filtered out:
    /// * writes that landed *after* we issued the read (`t_issue`) — the
    ///   in-flux window; our snapshot predates them and the shadow marks
    ///   surface them through the `influx_windows` statistic instead;
    /// * state-transfer applies (the service process rewrites whole slots
    ///   on a lagger that a Phase-2-starved reader may still legitimately
    ///   target; the reader's snapshot of committed versions stays valid —
    ///   see DESIGN.md §10).
    ///
    /// Active-only mode is excluded wholesale: racing active replicas
    /// write identical slot images remotely by design.
    #[allow(clippy::too_many_arguments)]
    fn audit_remote_slot_read(
        &self,
        target: &rdma_sim::Node,
        oid: ObjectId,
        addr: rdma_sim::Addr,
        cap: usize,
        versions: &crate::store::SlotVersions,
        chosen_ts: Timestamp,
        r_ts: Timestamp,
        t_issue: u64,
    ) {
        let Some(det) = self.shared.cluster.detector.as_ref() else {
            return;
        };
        if self.cfg().execution_mode != crate::ExecutionMode::ActiveOnly {
            let one = (crate::store::VERSION_HDR + cap) as u64;
            // On a timestamp tie `read_for` keeps version `a`.
            let start = if chosen_ts == versions.a.0 {
                addr
            } else {
                addr.offset(one)
            };
            let Some(conflict) = det.audit_remote_read(target, start, one as usize) else {
                return;
            };
            if conflict.writer.time_ns > t_issue || conflict.writer.proc.starts_with("heron-svc-") {
                return;
            }
            det.report_lint(
                "remote read targeted the active version slot",
                target,
                format!("slot:{oid}"),
                conflict.range,
                Some(conflict.writer),
                format!(
                    "the version chosen by the remote reader (ts {} for request ts {}) \
                     was written with no happens-before edge to the reader; on real \
                     hardware the one-sided read could have returned torn bytes",
                    chosen_ts.raw(),
                    r_ts.raw(),
                ),
            );
        }
    }

    /// Algorithm 2 lines 8–13: ask every replica of `h` for the object's
    /// address and wait until a majority answered.
    fn query_addresses(&self, oid: ObjectId, h: PartitionId, candidates: &[usize]) {
        let shared = &self.shared;
        let majority = self.cfg().majority();
        shared.addr_heard.lock().remove(&oid);
        for q in 0..self.n() {
            let target = shared.peer(h, q);
            if target.id() == shared.node.id() {
                continue;
            }
            let msg = crate::layout::encode_rpc(&crate::layout::Rpc::AddrQuery { oid });
            let _ = shared.qp(&target).send(msg);
        }
        let _ = candidates;
        // Replies are absorbed by the service process, which fills
        // object_map/addr_heard and rings the doorbell.
        shared.node.poll_until_timeout(
            || {
                shared
                    .addr_heard
                    .lock()
                    .get(&oid)
                    .map(|nodes| nodes.len() >= majority)
                    .unwrap_or(false)
            },
            Duration::from_millis(1),
        );
    }

    /// The §III-D2 *active-only* execution of a multi-partition request:
    /// this (active) replica reads the union read set, runs the
    /// application once per involved partition, applies its own writes
    /// locally, and writes the passive partitions' objects remotely as
    /// whole dual-version slot images (racing active replicas write
    /// identical images, so the competition the paper warns about is
    /// harmless here). FIFO links guarantee these object writes land at
    /// every passive replica before this replica's Phase-4 coordination
    /// entry.
    fn execute_active_only(
        &self,
        payload: &[u8],
        ts: Timestamp,
        dests: &[PartitionId],
        pending: &mut PendingWrites,
    ) -> Result<Execution, Lagging> {
        let shared = &self.shared;
        let app = Arc::clone(&shared.cluster.app);
        // Union read set, caching remote slot images for the write-back.
        let mut reads = ReadSet::new();
        let mut remote_slots: HashMap<ObjectId, crate::store::SlotVersions> = HashMap::new();
        for oid in app.read_set(payload) {
            match app.placement(oid) {
                Placement::Replicated => {
                    let (_, v) = shared
                        .store
                        .get(oid)
                        .unwrap_or_else(|| panic!("replicated object {oid} missing"));
                    reads.insert(oid, v);
                }
                Placement::Partition(h) if h == shared.partition => {
                    let (_, v) = shared
                        .store
                        .get(oid)
                        .unwrap_or_else(|| panic!("local object {oid} missing"));
                    reads.insert(oid, v);
                }
                Placement::Partition(h) => {
                    let (versions, _) = self.remote_read_slot(oid, h, ts)?;
                    let (_, v) = versions.read_for(ts).expect("checked by remote_read_slot");
                    reads.insert(oid, v.clone());
                    remote_slots.insert(oid, versions);
                }
            }
        }
        // Execute every partition's share; the active pays all the compute
        // the passive partitions saved.
        let local = StoreReader { shared };
        let mut total_compute = Duration::ZERO;
        let mut response = Bytes::new();
        let mut remote_writes: Vec<(PartitionId, ObjectId, Bytes)> = Vec::new();
        shared.in_write_phase.fetch_add(1, Ordering::SeqCst);
        for &p in dests {
            let exec = app.execute(p, payload, &reads, &local);
            total_compute += exec.compute;
            if response.is_empty() {
                response = exec.response.clone();
            }
            for (oid, value) in exec.writes {
                match app.placement(oid) {
                    Placement::Replicated => {
                        panic!("application attempted to write replicated object {oid}")
                    }
                    Placement::Partition(h) if h == shared.partition => {
                        shared.store.set(oid, &value, ts);
                        shared.log.lock().push((ts.raw(), oid));
                    }
                    Placement::Partition(h) => remote_writes.push((h, oid, value)),
                }
            }
        }
        shared.in_write_phase.fetch_sub(1, Ordering::SeqCst);
        if !total_compute.is_zero() {
            sim::sleep(total_compute);
        }
        // Write back the passive partitions' objects. In batched mode they
        // are queued and ride the Phase-4 coordination doorbell (one batch
        // per peer); unbatched, each image is its own verb, exactly as
        // before.
        let batched = self.cfg().max_batch() > 1;
        for (h, oid, value) in remote_writes {
            let versions = remote_slots.get(&oid).unwrap_or_else(|| {
                panic!(
                    "active-only mode requires remotely-written object {oid} \
                     to be in the request's read set"
                )
            });
            for q in 0..self.n() {
                let target = shared.peer(h, q);
                let Some(&(addr, cap)) = shared.object_map.lock().get(&(oid, target.id())) else {
                    continue; // unknown address: that replica will lag and state-transfer
                };
                let image = encode_slot_image(versions, &value, ts, cap);
                if batched {
                    pending.entry(target.id()).or_default().push((addr, image));
                } else {
                    let _ = shared.qp(&target).post_write(addr, image);
                }
            }
        }
        Ok(Execution {
            writes: vec![],
            response,
            compute: Duration::ZERO,
        })
    }

    /// Compute + writing phase: runs the application, then applies local
    /// writes under the dual-versioning rule and appends to the update log.
    fn execute_and_write(&self, payload: &[u8], ts: Timestamp, reads: &ReadSet) -> Execution {
        let shared = &self.shared;
        let app = &shared.cluster.app;
        let local = StoreReader { shared };
        let exec = app.execute(shared.partition, payload, reads, &local);
        if !exec.compute.is_zero() {
            sim::sleep(exec.compute);
        }
        shared.in_write_phase.fetch_add(1, Ordering::SeqCst);
        for (oid, value) in &exec.writes {
            match app.placement(*oid) {
                Placement::Replicated => {
                    panic!("application attempted to write replicated object {oid}")
                }
                Placement::Partition(h) if h == shared.partition => {
                    shared.store.set(*oid, value, ts);
                    shared.log.lock().push((ts.raw(), *oid));
                }
                Placement::Partition(_) => {
                    // Remote object: its own partition writes it (paper
                    // §III-A Phase 3); nothing to do here.
                }
            }
        }
        shared.in_write_phase.fetch_sub(1, Ordering::SeqCst);
        exec
    }

    /// Writes the response into the client's response slot for our
    /// partition — one unsignaled RDMA write.
    fn reply(&self, client_id: u64, seq: u64, response: &[u8]) {
        post_reply(&self.shared, client_id, seq, response);
    }
}

/// Posts `response` into the client's response slot for this replica —
/// one unsignaled RDMA write. Called from the serial executor (inline)
/// and from the pool dispatcher (the slot's single writer at width > 1).
fn post_reply(shared: &Arc<ReplicaShared>, client_id: u64, seq: u64, response: &[u8]) {
    let cfg = &shared.cluster.cfg;
    let info = {
        let clients = shared.cluster.clients.lock();
        match clients.get(&client_id) {
            Some(c) => (c.node, c.resp_base),
            None => return, // client vanished (e.g. test ended)
        }
    };
    let client_node = shared.cluster.fabric.node(info.0);
    let slot = resp_slot(
        info.1,
        shared.partition.0 as usize,
        shared.idx,
        cfg.replicas_per_partition,
        cfg.max_response,
    );
    let buf = encode_response(seq, response);
    let _ = shared.qp(&client_node).post_write(slot, buf);
}

/// Builds the dual-version slot image that results from applying the
/// paper's `set()` rule (overwrite the smaller-timestamp version) to a
/// remotely-read slot — what the active-only mode writes back to passive
/// replicas. Deterministic: racing writers with the same reads produce
/// byte-identical images.
fn encode_slot_image(
    versions: &crate::store::SlotVersions,
    new_value: &[u8],
    ts: Timestamp,
    cap: usize,
) -> Vec<u8> {
    assert!(
        new_value.len() <= cap,
        "active-only remote write exceeds the remote slot capacity"
    );
    let encode_one = |buf: &mut Vec<u8>, tmp: Timestamp, data: &[u8]| {
        buf.extend_from_slice(&tmp.raw().to_le_bytes());
        buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
        buf.extend_from_slice(data);
        buf.extend(std::iter::repeat_n(0u8, cap - data.len()));
    };
    let mut buf = Vec::with_capacity(2 * (16 + cap));
    let victim_is_a = versions.a.0 <= versions.b.0;
    if victim_is_a {
        encode_one(&mut buf, ts, new_value);
        encode_one(&mut buf, versions.b.0, &versions.b.1);
    } else {
        encode_one(&mut buf, versions.a.0, &versions.a.1);
        encode_one(&mut buf, ts, new_value);
    }
    buf
}

/// [`LocalReader`] backed by the executing replica's store.
struct StoreReader<'a> {
    shared: &'a ReplicaShared,
}

impl LocalReader for StoreReader<'_> {
    fn read(&self, oid: ObjectId) -> Option<Bytes> {
        match self.shared.cluster.app.placement(oid) {
            Placement::Replicated => {}
            Placement::Partition(h) if h == self.shared.partition => {}
            Placement::Partition(_) => return None,
        }
        self.shared.store.get(oid).map(|(_, v)| v)
    }
}

// ----------------------------------------------------------------------
// The P-SMR pool: dispatcher + workers (executor_width > 1).
// ----------------------------------------------------------------------

/// A command handed from the dispatcher to a worker.
pub(crate) struct Job {
    d: Delivered,
    /// Virtual time the dispatcher took the delivery off the stream; the
    /// gap to the worker's pickup is the `execute.parallel` dispatch wait.
    recv_ns: u64,
    /// Sorted, deduplicated conflict key-set.
    keys: Vec<u64>,
}

/// Why a worker parked mid-command.
#[derive(Debug, Clone)]
pub(crate) enum ParkReason {
    /// Phase-2 barrier starved past the transfer timeout.
    Phase2Starved {
        /// The barrier's involved partitions, for the dispatcher's
        /// heal check.
        dests: Vec<PartitionId>,
    },
    /// A remote read found no version old enough.
    Lagging,
}

/// Worker → dispatcher notifications.
pub(crate) enum WorkerEvent {
    /// The worker finished its command. `reply` carries the client
    /// response for the dispatcher to post (`None` if the command was
    /// abandoned as transfer-covered): the dispatcher is the single
    /// writer of this replica's per-client response slots, so replies
    /// from concurrently-finishing workers never race — see
    /// [`StallHandler::on_reply`].
    Done {
        worker: usize,
        ts: u64,
        reply: Option<(u64, u64, Vec<u8>)>,
    },
    /// The worker is parked waiting for a [`StallVerdict`].
    Parked {
        worker: usize,
        ts: u64,
        reason: ParkReason,
    },
}

/// Dispatcher → parked worker resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallVerdict {
    /// The transfer's snapshot covered the worker's command: abandon it.
    Covered,
    /// Not covered: retry the stalled step.
    Retry,
}

/// One in-flight command, from dispatch until its `Done` event.
struct InFlight {
    ts: u64,
    keys: Vec<u64>,
    parked: Option<ParkReason>,
}

/// The pool dispatcher: owns the delivery stream and the conflict-gated
/// dispatch, runs both sides of the state-transfer protocol (after
/// quiescing the workers), and maintains the `completed_req` watermark.
pub(crate) struct Dispatcher {
    shared: Arc<ReplicaShared>,
    deliveries: Mailbox<DeliveryEvent>,
    events: Mailbox<WorkerEvent>,
    jobs: Vec<Mailbox<Job>>,
    verdicts: Vec<Mailbox<StallVerdict>>,
    /// Delivered, not yet dispatched (front dispatches first — strict
    /// delivery order).
    queue: VecDeque<Job>,
    /// In-flight commands by worker index (deterministic iteration).
    inflight: BTreeMap<usize, InFlight>,
    /// Idle worker indices; the lowest free index is picked.
    free: BTreeSet<usize>,
    /// Dispatched timestamps → finished?, pruned from the front as the
    /// prefix completes; the largest pruned entry is the `completed_req`
    /// watermark.
    done: BTreeMap<u64, bool>,
    /// First time we observed each pending state-transfer request
    /// (requester idx, from_tmp) — drives the deterministic responder
    /// rotation of Algorithm 3.
    seen_requests: HashMap<(usize, u64), SimTime>,
    /// Set by an ordering-layer Gap: nothing may execute until a state
    /// transfer covers everything up to the next delivery.
    needs_full_sync: bool,
    /// The first delivery after a Gap, held back until the pool drained
    /// and the covering transfer completed.
    pending_gap: Option<Delivered>,
    /// Highest client seq this replica has posted a response for, per
    /// client. Workers can finish out of delivery order, so without this
    /// guard a lagging command's reply would overwrite a fresher one in
    /// the client's (single, per-replica) response slot, regressing its
    /// seq word. Skipping the stale post is safe: the slot's newer seq
    /// already satisfies the client's `>= seq` answered check, and a
    /// closed-loop client never re-reads an older seq.
    last_replied: HashMap<u64, u64>,
}

impl Dispatcher {
    fn cfg(&self) -> &crate::HeronConfig {
        &self.shared.cluster.cfg
    }

    fn n(&self) -> usize {
        self.cfg().replicas_per_partition
    }

    /// Runs the dispatcher loop forever.
    pub(crate) fn run(mut self) {
        // Executors-per-replica occupancy timeline (inert when profiling
        // is off): how many of the pool's workers hold a command.
        let busy = if sim::prof::enabled() {
            sim::prof::gauge(format!(
                "pool.busy.p{}r{}",
                self.shared.partition.0, self.shared.idx
            ))
        } else {
            sim::prof::Gauge::disabled()
        };
        let mut busy_last = 0u64;
        loop {
            if busy.is_enabled() {
                let v = self.inflight.len() as u64;
                if v != busy_last {
                    busy.set(v);
                    busy_last = v;
                }
            }
            if !self.shared.node.is_alive() {
                // Crashed: stop dispatching until recovery; workers caught
                // mid-command keep going against failing verbs, exactly
                // like the serial executor caught mid-command.
                self.shared
                    .node
                    .poll_until_timeout(|| self.shared.node.is_alive(), Duration::from_millis(1));
                continue;
            }
            let mut progress = self.drain_events();
            if self.pending_gap.is_none() {
                if let Some(ev) = self.deliveries.try_recv() {
                    match ev {
                        DeliveryEvent::Deliver(d) => self.on_deliver(d),
                        DeliveryEvent::Gap { .. } => self.needs_full_sync = true,
                    }
                    progress = true;
                }
            }
            let serve_blocked = self.serve_transfers(&mut progress);
            progress |= self.resolve_parks();
            progress |= self.resolve_gap();
            // Dispatch is paused while a due responder serve or a parked
            // worker waits for the pool to drain — both need a quiesced
            // pool, and feeding it new work would starve them.
            let anyone_parked = self.inflight.values().any(|f| f.parked.is_some());
            if !serve_blocked && !anyone_parked {
                progress |= self.try_dispatch();
            }
            if progress {
                continue;
            }
            self.idle_wait();
        }
    }

    /// Absorbs worker notifications: completions advance the watermark and
    /// free the worker; parks are recorded for [`Self::resolve_parks`].
    fn drain_events(&mut self) -> bool {
        let mut any = false;
        while let Some(ev) = self.events.try_recv() {
            any = true;
            match ev {
                WorkerEvent::Done { worker, ts, reply } => {
                    if let Some((client_id, seq, response)) = reply {
                        if self.last_replied.get(&client_id).is_none_or(|&l| seq > l) {
                            self.last_replied.insert(client_id, seq);
                            post_reply(&self.shared, client_id, seq, &response);
                        }
                    }
                    self.inflight.remove(&worker);
                    self.free.insert(worker);
                    if let Some(fin) = self.done.get_mut(&ts) {
                        *fin = true;
                    }
                    // Advance the prefix watermark: `completed_req` may
                    // only cover timestamps with no unfinished dispatch
                    // below them (a responder's snapshot bound must have
                    // no holes).
                    let mut watermark = None;
                    while let Some((&t, &fin)) = self.done.first_key_value() {
                        if !fin {
                            break;
                        }
                        self.done.pop_first();
                        watermark = Some(t);
                    }
                    if let Some(t) = watermark {
                        let cur = self.shared.completed_req.load(Ordering::SeqCst);
                        self.shared
                            .completed_req
                            .store(cur.max(t), Ordering::SeqCst);
                        if t > cur {
                            crate::replica::publish_progress(&self.shared);
                        }
                    }
                }
                WorkerEvent::Parked { worker, ts, reason } => {
                    if let Some(f) = self.inflight.get_mut(&worker) {
                        debug_assert_eq!(f.ts, ts, "park for a command the worker does not hold");
                        f.parked = Some(reason);
                    }
                }
            }
        }
        any
    }

    /// Algorithm 1 lines 3–4 plus queue admission (the dispatcher half of
    /// the serial `on_deliver` prefix).
    fn on_deliver(&mut self, d: Delivered) {
        let shared = &self.shared;
        let ts = d.ts;
        if ts.raw() <= shared.last_req.load(Ordering::SeqCst) {
            shared
                .cluster
                .metrics
                .skipped_requests
                .fetch_add(1, Ordering::Relaxed);
            shared.exec_trace.lock().push((ts.raw(), 's'));
            return;
        }
        shared.last_req.store(ts.raw(), Ordering::SeqCst);
        if self.needs_full_sync {
            // Everything missed has a smaller timestamp than this delivery;
            // hold it until the pool drained and a transfer covers it.
            self.needs_full_sync = false;
            self.pending_gap = Some(d);
            return;
        }
        let keys = {
            let (_, _, _, payload) = decode_envelope(&d.payload);
            let mut k = shared.cluster.app.conflict_keys(payload);
            k.sort_unstable();
            k.dedup();
            k
        };
        self.queue.push_back(Job {
            d,
            recv_ns: sim::now().as_nanos(),
            keys,
        });
    }

    /// Dispatches from the queue front while a free worker exists and the
    /// front's conflict keys are disjoint from every in-flight command's.
    fn try_dispatch(&mut self) -> bool {
        let mut any = false;
        while !self.queue.is_empty() && !self.free.is_empty() {
            // A transfer that completed after this command was queued may
            // already cover it (its effects are in the adopted snapshot);
            // executing it against newer state would be wrong. The
            // watermark can only reach a queued timestamp via a transfer:
            // dispatched commands all precede it in delivery order.
            let front_ts = self.queue.front().expect("checked non-empty").d.ts.raw();
            if front_ts <= self.shared.completed_req.load(Ordering::SeqCst) {
                let job = self.queue.pop_front().expect("checked non-empty");
                self.shared
                    .cluster
                    .metrics
                    .skipped_requests
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.exec_trace.lock().push((job.d.ts.raw(), 's'));
                any = true;
                continue;
            }
            let conflicts = {
                let front = self.queue.front().expect("checked non-empty");
                self.inflight
                    .values()
                    .any(|f| f.keys.iter().any(|k| front.keys.binary_search(k).is_ok()))
            };
            if conflicts {
                break;
            }
            let worker = *self.free.iter().next().expect("checked non-empty");
            self.free.remove(&worker);
            let job = self.queue.pop_front().expect("checked non-empty");
            let ts = job.d.ts.raw();
            // 'e' is pushed at dispatch, which happens in delivery order
            // (front-only), preserving the checker's strictly-increasing
            // execution-trace invariant.
            self.shared.exec_trace.lock().push((ts, 'e'));
            self.done.insert(ts, false);
            self.inflight.insert(
                worker,
                InFlight {
                    ts,
                    keys: job.keys.clone(),
                    parked: None,
                },
            );
            let _ = self.jobs[worker].send(job);
            any = true;
        }
        any
    }

    /// Requester-side stall resolution: once every in-flight worker is
    /// parked (dispatch pauses on the first park, so runners drain), the
    /// pool is quiesced-except-parked — parked workers sit at safe points
    /// with no partial writes — and the dispatcher runs Algorithm 3's
    /// requester side on their behalf, then hands each a verdict.
    fn resolve_parks(&mut self) -> bool {
        if self.inflight.is_empty() || self.inflight.values().any(|f| f.parked.is_none()) {
            return false;
        }
        // The transfer is abortable on barrier-heal only when every park
        // is a Phase-2 starvation whose barrier has healed (the serial
        // executor's anti-deadlock escape hatch, aggregated over the
        // pool). A lagging park genuinely needs the transfer.
        let mut barrier_checks: Vec<(Timestamp, Vec<PartitionId>)> = Vec::new();
        let mut any_lagging = false;
        for f in self.inflight.values() {
            match f.parked.as_ref().expect("all parked") {
                ParkReason::Phase2Starved { dests } => {
                    barrier_checks.push((Timestamp::from_raw(f.ts), dests.clone()));
                }
                ParkReason::Lagging => any_lagging = true,
            }
        }
        let heal_shared = Arc::clone(&self.shared);
        let healed = move || {
            !any_lagging
                && barrier_checks
                    .iter()
                    .all(|(ts, dests)| coord_status(&heal_shared, dests, *ts, 1).1)
        };
        let rid = state_transfer_abortable(&self.shared, &healed);
        for (worker, f) in self.inflight.iter_mut() {
            f.parked = None;
            let covered = rid.map(|r| r >= f.ts).unwrap_or(false);
            let verdict = if covered {
                StallVerdict::Covered
            } else {
                StallVerdict::Retry
            };
            let _ = self.verdicts[*worker].send(verdict);
        }
        true
    }

    /// Completes a Gap recovery once the pool drained: transfer until a
    /// snapshot covers the held-back delivery, then skip it (the serial
    /// executor's `needs_full_sync` path, made pool-aware).
    fn resolve_gap(&mut self) -> bool {
        let Some(d) = &self.pending_gap else {
            return false;
        };
        if !self.queue.is_empty() || !self.inflight.is_empty() {
            return false;
        }
        let ts = d.ts.raw();
        while state_transfer(&self.shared) < ts {}
        self.shared.exec_trace.lock().push((ts, 's'));
        self.pending_gap = None;
        true
    }

    /// Responder side of Algorithm 3 for the pool: identical rotation to
    /// the serial executor, but a due serve first quiesces the pool —
    /// `completed_req` is an exact request boundary only when nothing is
    /// mid-command. Returns whether a due serve is waiting on the drain
    /// (which pauses dispatch).
    fn serve_transfers(&mut self, progress: &mut bool) -> bool {
        let shared = Arc::clone(&self.shared);
        let n = self.n();
        let pending: std::collections::HashSet<(usize, u64)> =
            pending_sync_requests(&shared).into_iter().collect();
        self.seen_requests.retain(|k, _| pending.contains(k));
        let mut blocked = false;
        for p in 0..n {
            if p == shared.idx {
                continue;
            }
            let slot = shared.layout.sync_slot(p);
            let status = shared.node.local_read_word(slot.offset(8)).unwrap_or(0);
            if status != 1 {
                continue;
            }
            let from = shared.node.local_read_word(slot).unwrap_or(0);
            let first_seen = *self.seen_requests.entry((p, from)).or_insert_with(sim::now);
            let my_rank = (shared.idx + n - p - 1) % n;
            let due = first_seen + self.cfg().transfer_timeout * my_rank as u32;
            if sim::now() < due {
                continue;
            }
            if !self.inflight.is_empty() {
                blocked = true;
                continue;
            }
            respond_transfer(&shared, p, from);
            self.seen_requests.remove(&(p, from));
            *progress = true;
        }
        blocked
    }

    /// Blocks until something can make progress: a delivery (unless held
    /// back by a Gap), a worker event, an unseen transfer request, or a
    /// registered request's rotation turn.
    fn idle_wait(&self) {
        let deliveries = self.deliveries.clone();
        let events = self.events.clone();
        let shared = Arc::clone(&self.shared);
        let now = sim::now();
        let n = self.n();
        let mut timeout = Duration::from_millis(10);
        for key in pending_sync_requests(&shared) {
            if let Some(first) = self.seen_requests.get(&key) {
                let rank = (shared.idx + n - key.0 - 1) % n;
                let due = *first + self.cfg().transfer_timeout * rank as u32;
                // Only future turns shorten the wait. A past-due serve
                // still pending here is blocked on the in-flight drain,
                // and its wake signal is a worker Done event (covered by
                // the predicate below); a zero timeout would return
                // without yielding and freeze the cooperative scheduler.
                if let Some(until_due) = due.checked_sub(now) {
                    if !until_due.is_zero() {
                        timeout = timeout.min(until_due);
                    }
                }
            }
        }
        let seen: std::collections::HashSet<(usize, u64)> =
            self.seen_requests.keys().copied().collect();
        let gap_held = self.pending_gap.is_some();
        self.shared.node.poll_until_timeout(
            || {
                !events.is_empty()
                    || (!gap_held && !deliveries.is_empty())
                    || pending_sync_requests(&shared)
                        .iter()
                        .any(|k| !seen.contains(k))
            },
            timeout,
        );
    }
}

/// A pool worker: executes the jobs its dispatcher hands it on its own
/// coordination lane, parking on stalls.
pub(crate) struct Worker {
    core: ExecCore,
    index: usize,
    jobs: Mailbox<Job>,
    events: Mailbox<WorkerEvent>,
    verdicts: Mailbox<StallVerdict>,
}

impl Worker {
    /// Runs the worker loop forever.
    pub(crate) fn run(self) {
        loop {
            let job = self.jobs.recv();
            let ts = job.d.ts;
            let mut stalls = PoolStalls {
                index: self.index,
                shared: &self.core.shared,
                events: &self.events,
                verdicts: &self.verdicts,
                reply: None,
            };
            let _ = self.core.run_command(&job.d, job.recv_ns, &mut stalls);
            let _ = self.events.send(WorkerEvent::Done {
                worker: self.index,
                ts: ts.raw(),
                reply: stalls.reply.take(),
            });
            self.core.shared.ring_doorbell();
        }
    }
}

/// [`StallHandler`] for pool workers: park and await the dispatcher's
/// verdict. `on_completed` is a no-op — the dispatcher advances the
/// watermark when it processes the worker's `Done` event.
struct PoolStalls<'a> {
    index: usize,
    shared: &'a Arc<ReplicaShared>,
    events: &'a Mailbox<WorkerEvent>,
    verdicts: &'a Mailbox<StallVerdict>,
    /// Reply captured by [`StallHandler::on_reply`], shipped to the
    /// dispatcher on the `Done` event.
    reply: Option<(u64, u64, Vec<u8>)>,
}

impl PoolStalls<'_> {
    fn park(&self, ts: Timestamp, reason: ParkReason) -> StallOutcome {
        // The park's whole duration is observable: a `pool.park` span nested
        // under the stalled command's span (so `trace_explain` and the blame
        // analyzer both see it), and a parked wait-state for the profiler.
        let label = match &reason {
            ParkReason::Phase2Starved { .. } => "phase2_starved",
            ParkReason::Lagging => "lagging",
        };
        let lagging = u64::from(matches!(reason, ParkReason::Lagging));
        let _span = sim::trace::span_args(
            "pool.park",
            0,
            &[
                ("ts", ts.raw()),
                ("worker", self.index as u64),
                ("lagging", lagging),
            ],
        );
        let _wait = sim::prof::parked_scope(label);
        let _ = self.events.send(WorkerEvent::Parked {
            worker: self.index,
            ts: ts.raw(),
            reason,
        });
        self.shared.ring_doorbell();
        match self.verdicts.recv() {
            StallVerdict::Covered => StallOutcome::Covered,
            StallVerdict::Retry => StallOutcome::Retry,
        }
    }
}

impl StallHandler for PoolStalls<'_> {
    fn on_phase2_starved(&mut self, dests: &[PartitionId], ts: Timestamp) -> StallOutcome {
        self.park(
            ts,
            ParkReason::Phase2Starved {
                dests: dests.to_vec(),
            },
        )
    }

    fn on_lagging(&mut self, ts: Timestamp) -> StallOutcome {
        self.park(ts, ParkReason::Lagging)
    }

    fn on_completed(&mut self, _ts: Timestamp) {}

    fn on_reply(&mut self, client_id: u64, seq: u64, response: &[u8]) -> bool {
        self.reply = Some((client_id, seq, response.to_vec()));
        true
    }
}

/// Spawns the executor pool for one replica: the dispatcher under the
/// serial executor's process name (so pool runs keep the same process
/// roster shape) plus `width` workers.
pub(crate) fn spawn_pool(
    simulation: &sim::Simulation,
    shared: Arc<ReplicaShared>,
    deliveries: Mailbox<DeliveryEvent>,
    p: usize,
    i: usize,
) {
    let width = shared.cluster.cfg.executor_width;
    debug_assert!(width > 1, "the pool exists only above width 1");
    let events: Mailbox<WorkerEvent> = Mailbox::new();
    let jobs: Vec<Mailbox<Job>> = (0..width).map(|_| Mailbox::new()).collect();
    let verdicts: Vec<Mailbox<StallVerdict>> = (0..width).map(|_| Mailbox::new()).collect();
    let dispatcher = Dispatcher {
        shared: Arc::clone(&shared),
        deliveries,
        events: events.clone(),
        jobs: jobs.clone(),
        verdicts: verdicts.clone(),
        queue: VecDeque::new(),
        inflight: BTreeMap::new(),
        free: (0..width).collect(),
        done: BTreeMap::new(),
        seen_requests: HashMap::new(),
        needs_full_sync: false,
        pending_gap: None,
        last_replied: HashMap::new(),
    };
    simulation.spawn(format!("heron-exec-p{p}r{i}"), move || dispatcher.run());
    for k in 0..width {
        let worker = Worker {
            core: ExecCore {
                shared: Arc::clone(&shared),
                lane: k,
            },
            index: k,
            jobs: jobs[k].clone(),
            events: events.clone(),
            verdicts: verdicts[k].clone(),
        };
        simulation.spawn(format!("heron-exec-p{p}r{i}w{k}"), move || worker.run());
    }
}
