//! RDMA memory layout of Heron's coordination structures, and wire codecs.
//!
//! Every replica node hosts (paper §III-B):
//!
//! * **coordination memory** `coord_mem[h][q]` — one 16-byte entry
//!   (`[timestamp, phase]`) per replica `q` of partition `h`, written by
//!   that replica with a single unsignaled RDMA write during Phases 2/4;
//! * **state-transfer memory** `statesync_mem[p]` — one `[req_tmp,
//!   status]` entry per group member `p`, the signalling array of
//!   Algorithm 3;
//! * a **transfer staging ring** where a responder streams 32 KiB state
//!   chunks, plus an `applied` counter word the responder reads for flow
//!   control;
//! * a **doorbell** word the colocated service process bumps to wake the
//!   executor through the node's memory condition.
//!
//! Clients host a **response region** with one `[seq, len, data]` slot per
//! partition; replicas answer with a single unsignaled write.

use crate::types::ObjectId;
use rdma_sim::Addr;

pub(crate) const WORD: usize = 8;

/// Coordination entry: `[tmp_raw, phase]`.
pub(crate) const COORD_ENTRY: usize = 2 * WORD;
/// State-transfer entry: `[req_tmp_raw, status]`.
pub(crate) const SYNC_ENTRY: usize = 2 * WORD;
/// Transfer chunk header: `[stamp, nbytes, bound]`. `bound` identifies the
/// responder's snapshot (its `completed_req` at serve time) and acts as a
/// stream id: if two responders ever race (rotation after a timeout), the
/// requester applies only one coherent stream.
pub(crate) const CHUNK_HDR: usize = 3 * WORD;
/// Response slot header: `[seq, len]`.
pub(crate) const RESP_HDR: usize = 2 * WORD;
/// Request envelope header: `[client_id, seq, submit_ns]`.
pub(crate) const ENV_HDR: usize = 3 * WORD;
/// Transfer record header: `[oid, len]`.
pub(crate) const REC_HDR: usize = 2 * WORD;

/// Byte addresses of Heron's regions on one replica node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplicaLayout {
    pub coord: Addr,
    pub statesync: Addr,
    pub ring: Addr,
    pub applied: Addr,
    pub doorbell: Addr,
    /// Completed-prefix watermarks: one word per replica of every
    /// partition, written by that replica with a one-sided write whenever
    /// its hole-free completed prefix advances. Only consulted when
    /// `coord_width > 1` — with a pool, a coordination lane moving beyond
    /// `ts` no longer implies `ts` finished there (a later non-conflicting
    /// command may coordinate first), so barrier checks need this explicit
    /// evidence instead.
    pub progress: Addr,
    /// Executor-pool width the coordination region was sized for: each
    /// writer replica owns `coord_width` *lanes* (one per pool worker),
    /// each a [`COORD_ENTRY`]. At width 1 the region is byte-identical to
    /// the pre-pool layout.
    pub coord_width: usize,
}

impl ReplicaLayout {
    /// Entry written by worker `lane` of replica `q` of partition `h`
    /// (with `n` replicas per partition). Each lane has a single writer
    /// process, and a worker's dispatch order makes its lane's timestamps
    /// strictly increasing — the monotonicity [`coord_slot`] readers rely
    /// on, preserved per lane rather than per replica.
    ///
    /// [`coord_slot`]: Self::coord_slot
    pub fn coord_slot(&self, h: usize, q: usize, lane: usize, n: usize) -> Addr {
        debug_assert!(lane < self.coord_width);
        self.coord
            .offset((((h * n + q) * self.coord_width + lane) * COORD_ENTRY) as u64)
    }

    /// State-transfer entry of requester `p`.
    pub fn sync_slot(&self, p: usize) -> Addr {
        self.statesync.offset((p * SYNC_ENTRY) as u64)
    }

    /// Staging slot for transfer chunk `stamp` (1-based).
    pub fn ring_slot(&self, stamp: u64, slots: usize, chunk: usize) -> Addr {
        let idx = ((stamp - 1) as usize) % slots;
        self.ring.offset((idx * (CHUNK_HDR + chunk)) as u64)
    }

    /// Completed-prefix watermark published by replica `q` of partition
    /// `h` (with `n` replicas per partition).
    pub fn progress_slot(&self, h: usize, q: usize, n: usize) -> Addr {
        self.progress.offset(((h * n + q) * WORD) as u64)
    }
}

/// Response slot of replica `r` of partition `p` in a client's response
/// region. Each replica owns a distinct slot, so a replica catching up on
/// old requests can never clobber a fresher replica's response.
pub(crate) fn resp_slot(base: Addr, p: usize, r: usize, n: usize, max_response: usize) -> Addr {
    base.offset(((p * n + r) * (RESP_HDR + max_response)) as u64)
}

// ---------------------------------------------------------------------
// Codecs.
// ---------------------------------------------------------------------

fn word(bytes: &[u8], idx: usize) -> u64 {
    u64::from_le_bytes(bytes[idx * 8..idx * 8 + 8].try_into().expect("word"))
}

/// Encodes a coordination entry.
pub(crate) fn encode_coord(tmp_raw: u64, phase: u64) -> [u8; COORD_ENTRY] {
    let mut buf = [0u8; COORD_ENTRY];
    buf[..8].copy_from_slice(&tmp_raw.to_le_bytes());
    buf[8..].copy_from_slice(&phase.to_le_bytes());
    buf
}

/// Encodes a state-transfer entry.
pub(crate) fn encode_sync(req_tmp_raw: u64, status: u64) -> [u8; SYNC_ENTRY] {
    let mut buf = [0u8; SYNC_ENTRY];
    buf[..8].copy_from_slice(&req_tmp_raw.to_le_bytes());
    buf[8..].copy_from_slice(&status.to_le_bytes());
    buf
}

/// Request envelope: `[client_id, seq, submit_ns, payload]`.
pub(crate) fn encode_envelope(client_id: u64, seq: u64, submit_ns: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(ENV_HDR + payload.len());
    buf.extend_from_slice(&client_id.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&submit_ns.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Decodes a request envelope into `(client_id, seq, submit_ns, payload)`.
pub(crate) fn decode_envelope(buf: &[u8]) -> (u64, u64, u64, &[u8]) {
    (word(buf, 0), word(buf, 1), word(buf, 2), &buf[ENV_HDR..])
}

/// Response slot image: `[seq, len, data]`.
pub(crate) fn encode_response(seq: u64, data: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(RESP_HDR + data.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
    buf.extend_from_slice(data);
    buf
}

// Address-query RPC (two-sided, Algorithm 2 lines 8–13).

const RPC_ADDR_QUERY: u64 = 1;
const RPC_ADDR_REPLY: u64 = 2;

/// Messages exchanged over the two-sided channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Rpc {
    /// "At which address do you store `oid`?"
    AddrQuery { oid: ObjectId },
    /// The answer; `slot = None` when the object is unknown to the
    /// responder.
    AddrReply {
        oid: ObjectId,
        slot: Option<(Addr, usize)>,
    },
}

pub(crate) fn encode_rpc(rpc: &Rpc) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 * WORD);
    match rpc {
        Rpc::AddrQuery { oid } => {
            buf.extend_from_slice(&RPC_ADDR_QUERY.to_le_bytes());
            buf.extend_from_slice(&oid.0.to_le_bytes());
        }
        Rpc::AddrReply { oid, slot } => {
            buf.extend_from_slice(&RPC_ADDR_REPLY.to_le_bytes());
            buf.extend_from_slice(&oid.0.to_le_bytes());
            match slot {
                Some((addr, cap)) => {
                    buf.extend_from_slice(&1u64.to_le_bytes());
                    buf.extend_from_slice(&addr.0.to_le_bytes());
                    buf.extend_from_slice(&(*cap as u64).to_le_bytes());
                }
                None => buf.extend_from_slice(&0u64.to_le_bytes()),
            }
        }
    }
    buf
}

pub(crate) fn decode_rpc(buf: &[u8]) -> Option<Rpc> {
    match word(buf, 0) {
        RPC_ADDR_QUERY => Some(Rpc::AddrQuery {
            oid: ObjectId(word(buf, 1)),
        }),
        RPC_ADDR_REPLY => {
            let oid = ObjectId(word(buf, 1));
            let slot = if word(buf, 2) == 1 {
                Some((Addr(word(buf, 3)), word(buf, 4) as usize))
            } else {
                None
            };
            Some(Rpc::AddrReply { oid, slot })
        }
        _ => None,
    }
}

/// Builds transfer records `[oid, len, raw-slot-bytes]` into chunk bodies.
pub(crate) fn encode_record(oid: ObjectId, raw_slot: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(REC_HDR + raw_slot.len());
    buf.extend_from_slice(&oid.0.to_le_bytes());
    buf.extend_from_slice(&(raw_slot.len() as u64).to_le_bytes());
    buf.extend_from_slice(raw_slot);
    buf
}

/// Iterates over the records in a chunk body.
pub(crate) fn decode_records(body: &[u8]) -> impl Iterator<Item = (ObjectId, &[u8])> {
    let mut off = 0usize;
    std::iter::from_fn(move || {
        if off + REC_HDR > body.len() {
            return None;
        }
        let oid = ObjectId(u64::from_le_bytes(
            body[off..off + 8].try_into().expect("oid word"),
        ));
        let len =
            u64::from_le_bytes(body[off + 8..off + 16].try_into().expect("len word")) as usize;
        let start = off + REC_HDR;
        if start + len > body.len() {
            return None;
        }
        off = start + len;
        Some((oid, &body[start..start + len]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let buf = encode_envelope(7, 42, 12345, b"req");
        let (c, s, t, p) = decode_envelope(&buf);
        assert_eq!((c, s, t, p), (7, 42, 12345, b"req".as_ref()));
    }

    #[test]
    fn rpc_round_trips() {
        for rpc in [
            Rpc::AddrQuery { oid: ObjectId(9) },
            Rpc::AddrReply {
                oid: ObjectId(9),
                slot: Some((Addr(0x100), 64)),
            },
            Rpc::AddrReply {
                oid: ObjectId(9),
                slot: None,
            },
        ] {
            assert_eq!(decode_rpc(&encode_rpc(&rpc)), Some(rpc));
        }
    }

    #[test]
    fn unknown_rpc_is_none() {
        let mut buf = encode_rpc(&Rpc::AddrQuery { oid: ObjectId(1) });
        buf[0] = 99;
        assert_eq!(decode_rpc(&buf), None);
    }

    #[test]
    fn records_pack_and_iterate() {
        let mut body = Vec::new();
        body.extend_from_slice(&encode_record(ObjectId(1), b"aaaa"));
        body.extend_from_slice(&encode_record(ObjectId(2), b"bb"));
        let recs: Vec<_> = decode_records(&body).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (ObjectId(1), b"aaaa".as_ref()));
        assert_eq!(recs[1], (ObjectId(2), b"bb".as_ref()));
    }

    #[test]
    fn coord_slots_are_disjoint() {
        let l = ReplicaLayout {
            coord: Addr(0),
            statesync: Addr(0),
            ring: Addr(0),
            applied: Addr(0),
            doorbell: Addr(0),
            progress: Addr(0),
            coord_width: 1,
        };
        let a = l.coord_slot(0, 0, 0, 3);
        let b = l.coord_slot(0, 1, 0, 3);
        let c = l.coord_slot(1, 0, 0, 3);
        assert_eq!(b.0 - a.0, COORD_ENTRY as u64);
        assert_eq!(c.0 - a.0, (3 * COORD_ENTRY) as u64);
    }

    #[test]
    fn coord_lanes_are_disjoint_and_width1_matches_legacy() {
        let wide = ReplicaLayout {
            coord: Addr(0),
            statesync: Addr(0),
            ring: Addr(0),
            applied: Addr(0),
            doorbell: Addr(0),
            progress: Addr(0),
            coord_width: 4,
        };
        // Lanes of one writer are adjacent entries; the next writer's
        // lane 0 starts after all of the previous writer's lanes.
        let a = wide.coord_slot(0, 0, 0, 3);
        assert_eq!(wide.coord_slot(0, 0, 1, 3).0 - a.0, COORD_ENTRY as u64);
        assert_eq!(
            wide.coord_slot(0, 1, 0, 3).0 - a.0,
            (4 * COORD_ENTRY) as u64
        );
        // Width 1 reproduces the pre-pool offsets exactly.
        let narrow = ReplicaLayout {
            coord_width: 1,
            ..wide
        };
        assert_eq!(narrow.coord_slot(1, 2, 0, 3).0, (5 * COORD_ENTRY) as u64);
    }

    #[test]
    fn ring_slots_wrap() {
        let l = ReplicaLayout {
            coord: Addr(0),
            statesync: Addr(0),
            ring: Addr(0x1000),
            applied: Addr(0),
            doorbell: Addr(0),
            progress: Addr(0),
            coord_width: 1,
        };
        let s1 = l.ring_slot(1, 4, 1024);
        let s5 = l.ring_slot(5, 4, 1024);
        assert_eq!(s1, s5);
        assert_eq!(l.ring_slot(2, 4, 1024).0 - s1.0, (CHUNK_HDR + 1024) as u64);
    }
}
