//! Core identifiers and placement types.

use amcast::GroupId;
use std::fmt;

/// Identifier of a Heron partition (shard). Each partition is replicated by
/// one atomic multicast group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u16);

impl PartitionId {
    /// The multicast group ordering requests for this partition.
    pub const fn group(self) -> GroupId {
        GroupId(self.0)
    }
}

impl From<GroupId> for PartitionId {
    fn from(g: GroupId) -> Self {
        PartitionId(g.0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Application object identifier (in TPC-C, one table row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj:{:#x}", self.0)
    }
}

/// Where an object lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Stored by the replicas of exactly one partition.
    Partition(PartitionId),
    /// Read-only copy in every partition (the paper replicates the TPC-C
    /// Warehouse and Item tables this way). Writing a replicated object is
    /// an application error.
    Replicated,
}

/// How an object is stored in memory — determines state-transfer cost
/// (paper §V-E2): serialized tables move as raw bytes; native tables must
/// be serialized by the sender and deserialized by the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// Kept serialized in RDMA-registered memory (TPC-C Stock, Customer) —
    /// remotely readable, cheap to state-transfer.
    Serialized,
    /// Kept as native in-memory structures (the other TPC-C tables) —
    /// state transfer pays (de)serialization.
    Native,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_maps_to_group() {
        assert_eq!(PartitionId(5).group(), GroupId(5));
        assert_eq!(PartitionId::from(GroupId(9)), PartitionId(9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PartitionId(3).to_string(), "p3");
        assert_eq!(ObjectId(255).to_string(), "obj:0xff");
    }
}
