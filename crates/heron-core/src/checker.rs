//! SMR consistency checker: records complete client histories and verifies
//! replica state and linearizability after a (possibly fault-injected) run.
//!
//! The checker is the oracle of the chaos test suite. It hooks into a
//! deployment at exactly two points — a [`CheckedClient`] wrapper that
//! timestamps every invocation/response, and the read-only diagnostics of
//! [`HeronCluster`] — so the protocol code paths under test carry **no**
//! test-only logic.
//!
//! Three independent checks:
//!
//! * **(a) agreement** — per partition, every replica's executed-request
//!   trace is strictly increasing in timestamp, and every request *settled*
//!   by a majority (per the replicas' `completed_req` watermarks) is covered
//!   — executed or state-transferred — by at least a majority of replicas;
//! * **(b) store order** — per replica, the write log is per-object
//!   monotone and the dual-versioned store's latest version is at least the
//!   log's newest write; across replicas, equal-timestamp versions are
//!   byte-identical and every replica whose `completed_req` reaches a
//!   write's timestamp holds exactly that version (commit-order
//!   consistency of the dual-versioning scheme, paper §III-A);
//! * **(c) linearizability** — the recorded client history linearizes
//!   against a user-supplied sequential model, using the Wing & Gong
//!   exhaustive search over the (small, closed-loop) concurrent window.
//!
//! Every failure is reported as a [`Violation`] carrying the simulation
//! seed and, when one can be pinned, the offending operation — enough to
//! replay the exact schedule.

// Violations are rich by design (they embed the offending operation for
// replay) and only exist on the cold failure path.
#![allow(clippy::result_large_err)]

use crate::client::HeronClient;
use crate::cluster::HeronCluster;
use crate::types::{ObjectId, PartitionId};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// One client operation as recorded by a [`CheckedClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Issuing client id.
    pub client: u64,
    /// The client's per-connection sequence number.
    pub seq: u64,
    /// The raw application request.
    pub request: Vec<u8>,
    /// Virtual time of invocation (nanoseconds).
    pub invoked_ns: u64,
    /// Virtual time the response was observed; `None` if the run ended
    /// with the operation still in flight.
    pub returned_ns: Option<u64>,
    /// The observed response; `None` while in flight.
    pub response: Option<Bytes>,
}

impl OpRecord {
    /// Whether the operation completed before the run ended.
    pub fn completed(&self) -> bool {
        self.returned_ns.is_some()
    }
}

/// A consistency violation, carrying everything needed to reproduce it:
/// the simulation seed and (when one can be pinned) the offending
/// operation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Seed of the simulation run that produced the violation.
    pub seed: u64,
    /// Which check failed: `"agreement"`, `"store"`, or
    /// `"linearizability"`.
    pub check: &'static str,
    /// Human-readable description of the failed assertion.
    pub detail: String,
    /// The operation the violation pins, if any.
    pub op: Option<OpRecord>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violation (seed {}): {}",
            self.check, self.seed, self.detail
        )?;
        if let Some(op) = &self.op {
            write!(
                f,
                "; offending operation: client {} seq {} request {:02x?} response {:?}",
                op.client, op.seq, op.request, op.response
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// A sequential model of the replicated application, used by the
/// linearizability check: `apply` must compute the response the *correct*
/// sequential service would give.
pub trait SequentialSpec {
    /// Full application state.
    type State: Clone;
    /// The initial (bootstrap) state.
    fn initial(&self) -> Self::State;
    /// Applies one request, mutating the state and returning the response.
    fn apply(&self, state: &mut Self::State, request: &[u8]) -> Bytes;
}

/// Records client histories and checks them — one per simulation run.
///
/// Cloning shares the underlying history, so a `Checker` can be handed to
/// many client processes.
#[derive(Clone)]
pub struct Checker {
    seed: u64,
    history: Arc<Mutex<Vec<OpRecord>>>,
}

impl fmt::Debug for Checker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("seed", &self.seed)
            .field("ops", &self.history.lock().len())
            .finish()
    }
}

impl Checker {
    /// Creates a checker for a run with the given simulation seed (used
    /// only for reporting).
    pub fn new(seed: u64) -> Self {
        Checker {
            seed,
            history: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The seed this checker reports violations against.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Attaches a new recording client to `cluster`.
    pub fn client(&self, cluster: &HeronCluster, name: impl Into<String>) -> CheckedClient {
        CheckedClient {
            inner: cluster.client(name),
            history: Arc::clone(&self.history),
        }
    }

    /// A snapshot of the recorded history, in invocation order.
    pub fn history(&self) -> Vec<OpRecord> {
        self.history.lock().clone()
    }

    /// Runs every check: replica-state consistency, then history
    /// linearizability.
    pub fn check<S: SequentialSpec>(
        &self,
        cluster: &HeronCluster,
        spec: &S,
    ) -> Result<(), Violation> {
        self.check_replicas(cluster)?;
        self.check_linearizable(spec)
    }

    /// Checks (a) agreement and (b) store/commit-order consistency against
    /// the final replica states of `cluster`.
    pub fn check_replicas(&self, cluster: &HeronCluster) -> Result<(), Violation> {
        let cfg = cluster.config();
        let n = cfg.replicas_per_partition;
        let majority = cfg.majority();
        for p in 0..cfg.partitions {
            let p = PartitionId(p as u16);
            let completed: Vec<u64> = (0..n).map(|i| cluster.completed_req(p, i)).collect();
            // The settled bound: the majority-th largest completed_req. Every
            // request at or below it finished its write phase (directly or by
            // state transfer) at a majority of replicas.
            let mut sorted = completed.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let settled = sorted[majority - 1];

            let traces: Vec<Vec<(u64, char)>> = (0..n).map(|i| cluster.exec_trace(p, i)).collect();
            // (a1) every replica executes in strictly increasing timestamp
            // order (the delivery order of the atomic multicast).
            for (i, tr) in traces.iter().enumerate() {
                let mut last = 0u64;
                for &(ts, ev) in tr {
                    if ev == 'e' {
                        if ts <= last {
                            return Err(self.violation(
                                "agreement",
                                format!(
                                    "{p} replica {i}: executed ts {ts} out of order (previous {last})"
                                ),
                            ));
                        }
                        last = ts;
                    }
                }
            }
            // (a2) every settled request is covered by a majority: a replica
            // covers ts if it executed it, or a state transfer carried it past
            // it ('t' entries record the transfer bound).
            let transfer_bound: Vec<u64> = traces
                .iter()
                .map(|tr| {
                    tr.iter()
                        .filter(|&&(_, e)| e == 't')
                        .map(|&(ts, _)| ts)
                        .max()
                        .unwrap_or(0)
                })
                .collect();
            // Only *surviving* executions count as evidence that the
            // canonical history contains a timestamp: an 'e' that is
            // followed (later in the same replica's trace) by a state
            // transfer whose bound covers it was superseded — a crashed
            // minority replica may have executed a timestamp that never
            // settled and was re-sequenced after failover, and the transfer
            // overwrote its effects.
            let executed: BTreeSet<u64> = traces
                .iter()
                .flat_map(|tr| {
                    let mut surviving = Vec::new();
                    let mut later_bound = 0u64;
                    for &(ts, e) in tr.iter().rev() {
                        match e {
                            't' => later_bound = later_bound.max(ts),
                            'e' if ts > later_bound => surviving.push(ts),
                            _ => {}
                        }
                    }
                    surviving
                })
                .collect();
            for &ts in executed.iter().take_while(|&&ts| ts <= settled) {
                let cover = (0..n)
                    .filter(|&i| {
                        transfer_bound[i] >= ts
                            || traces[i].iter().any(|&(t, e)| t == ts && e == 'e')
                    })
                    .count();
                if cover < majority {
                    return Err(self.violation(
                        "agreement",
                        format!(
                            "{p}: settled request ts {ts} (bound {settled}) covered by only \
                             {cover}/{n} replicas, need {majority}"
                        ),
                    ));
                }
            }

            // (b1) per-replica: write log monotone per object, store at least
            // as new as the log.
            for i in 0..n {
                let log = cluster.write_log(p, i);
                let mut newest: HashMap<ObjectId, u64> = HashMap::new();
                for &(ts, oid) in &log {
                    if let Some(&prev) = newest.get(&oid) {
                        if ts < prev {
                            return Err(self.violation(
                                "store",
                                format!(
                                    "{p} replica {i}: write log for {oid} regressed ({ts} after {prev})"
                                ),
                            ));
                        }
                    }
                    newest.insert(oid, ts);
                }
                for (&oid, &max_ts) in &newest {
                    match cluster.peek_versioned(p, i, oid) {
                        None => {
                            return Err(self.violation(
                                "store",
                                format!("{p} replica {i}: logged object {oid} missing from store"),
                            ))
                        }
                        Some((vts, _)) if vts < max_ts => {
                            return Err(self.violation(
                                "store",
                                format!(
                                    "{p} replica {i}: store holds {oid} at ts {vts}, behind its \
                                     own log ({max_ts})"
                                ),
                            ))
                        }
                        Some(_) => {}
                    }
                }
            }

            // (b2) cross-replica: replicas that completed a write hold it,
            // byte-identical; equal timestamps always mean equal bytes.
            let mut oids: BTreeSet<ObjectId> = BTreeSet::new();
            for i in 0..n {
                oids.extend(cluster.object_ids(p, i));
            }
            for oid in oids {
                let vers: Vec<Option<(u64, Bytes)>> =
                    (0..n).map(|i| cluster.peek_versioned(p, i, oid)).collect();
                let newest = vers.iter().flatten().map(|&(t, _)| t).max().unwrap_or(0);
                let mut reference: Option<(usize, &Bytes)> = None;
                for i in 0..n {
                    if completed[i] < newest {
                        continue; // legitimately lagging
                    }
                    match &vers[i] {
                        None => {
                            return Err(self.violation(
                                "store",
                                format!(
                                    "{p} replica {i}: completed_req {} but does not host {oid} \
                                     (written at ts {newest})",
                                    completed[i]
                                ),
                            ))
                        }
                        Some((t, v)) => {
                            if *t != newest {
                                return Err(self.violation(
                                    "store",
                                    format!(
                                        "{p} replica {i}: completed_req {} but holds {oid} at ts \
                                         {t}, expected {newest}",
                                        completed[i]
                                    ),
                                ));
                            }
                            match reference {
                                None => reference = Some((i, v)),
                                Some((j, w)) if w != v => {
                                    return Err(self.violation(
                                        "store",
                                        format!(
                                            "{p}: divergent value for {oid} at ts {newest} \
                                             between replicas {j} and {i}"
                                        ),
                                    ))
                                }
                                Some(_) => {}
                            }
                        }
                    }
                }
                for i in 0..n {
                    for j in (i + 1)..n {
                        if let (Some((ti, vi)), Some((tj, vj))) = (&vers[i], &vers[j]) {
                            if ti == tj && vi != vj {
                                return Err(self.violation(
                                    "store",
                                    format!(
                                        "{p}: replicas {i} and {j} hold different bytes for \
                                         {oid} at the same ts {ti}"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks (c): the recorded history linearizes against `spec`.
    pub fn check_linearizable<S: SequentialSpec>(&self, spec: &S) -> Result<(), Violation> {
        check_history(&self.history(), spec, self.seed)
    }

    fn violation(&self, check: &'static str, detail: String) -> Violation {
        Violation {
            seed: self.seed,
            check,
            detail,
            op: None,
        }
    }
}

/// A [`HeronClient`] that records every operation into its checker's
/// history. Same blocking closed-loop semantics as the wrapped client.
pub struct CheckedClient {
    inner: HeronClient,
    history: Arc<Mutex<Vec<OpRecord>>>,
}

impl fmt::Debug for CheckedClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckedClient")
            .field("inner", &self.inner)
            .finish()
    }
}

impl CheckedClient {
    /// The wrapped client's id.
    pub fn id(&self) -> u64 {
        self.inner.id()
    }

    /// Executes a request, recording invocation and response times. See
    /// [`HeronClient::execute`].
    pub fn execute(&mut self, request: &[u8]) -> Bytes {
        self.run(request, None)
    }

    /// Executes with an explicit destination set. See
    /// [`HeronClient::execute_on`].
    pub fn execute_on(&mut self, request: &[u8], dests: &[PartitionId]) -> Bytes {
        self.run(request, Some(dests))
    }

    fn run(&mut self, request: &[u8], dests: Option<&[PartitionId]>) -> Bytes {
        let idx = {
            let mut h = self.history.lock();
            h.push(OpRecord {
                client: self.inner.id(),
                seq: self.inner.seq() + 1,
                request: request.to_vec(),
                invoked_ns: sim::now().as_nanos(),
                returned_ns: None,
                response: None,
            });
            h.len() - 1
        };
        let resp = match dests {
            Some(d) => self.inner.execute_on(request, d),
            None => self.inner.execute(request),
        };
        let mut h = self.history.lock();
        h[idx].returned_ns = Some(sim::now().as_nanos());
        h[idx].response = Some(resp.clone());
        resp
    }
}

/// Checks an explicit history for linearizability against `spec` — the
/// Wing & Gong search. Exposed separately so tests can corrupt a recorded
/// history and prove the check fires.
///
/// Operations still in flight when the run ended (`returned_ns == None`)
/// may linearize at any point or not at all.
pub fn check_history<S: SequentialSpec>(
    history: &[OpRecord],
    spec: &S,
    seed: u64,
) -> Result<(), Violation> {
    let mut ops: Vec<OpRecord> = history.to_vec();
    ops.sort_by_key(|o| (o.invoked_ns, o.client, o.seq));
    let completed_total = ops.iter().filter(|o| o.completed()).count();
    let mut taken = vec![false; ops.len()];
    let mut search = Search {
        ops: &ops,
        spec,
        steps: 0,
        budget: 2_000_000,
        exhausted: false,
    };
    let init = spec.initial();
    if search.dfs(&mut taken, &init, completed_total) {
        return Ok(());
    }
    if search.exhausted {
        return Err(Violation {
            seed,
            check: "linearizability",
            detail: format!(
                "search budget exhausted after {} steps over {} operations — window too wide \
                 to decide",
                search.steps,
                ops.len()
            ),
            op: first_divergence(&ops, spec),
        });
    }
    // Pin a culprit for the report: replay completed operations in return
    // order and flag the first response the sequential model cannot
    // produce. (Heuristic — with closed-loop clients the replay order is a
    // valid linearization candidate, so the first divergence is almost
    // always the corrupted/violating operation.)
    let culprit = first_divergence(&ops, spec);
    Err(Violation {
        seed,
        check: "linearizability",
        detail: format!(
            "no linearization of {} operations ({} completed) exists",
            ops.len(),
            completed_total
        ),
        op: culprit,
    })
}

struct Search<'a, S: SequentialSpec> {
    ops: &'a [OpRecord],
    spec: &'a S,
    steps: usize,
    budget: usize,
    exhausted: bool,
}

impl<S: SequentialSpec> Search<'_, S> {
    /// Extends the linearization by one operation; `completed_left` counts
    /// completed operations not yet placed. Pending operations are optional:
    /// success requires only that every *completed* operation is placed.
    fn dfs(&mut self, taken: &mut [bool], state: &S::State, completed_left: usize) -> bool {
        if completed_left == 0 {
            return true;
        }
        if self.steps >= self.budget {
            self.exhausted = true;
            return false;
        }
        self.steps += 1;
        // An operation can go next only if it was invoked *strictly* before
        // every unplaced completed operation returned (Wing & Gong
        // minimality). Strict: responses take nonzero virtual time to reach
        // the client, so an operation invoked at the very instant another
        // returned cannot have taken effect first — and closed-loop clients
        // produce exactly that equality between consecutive operations, which
        // must not widen the search window.
        let min_ret = self
            .ops
            .iter()
            .zip(taken.iter())
            .filter(|(o, &t)| !t && o.completed())
            .map(|(o, _)| o.returned_ns.expect("completed"))
            .min()
            .expect("completed_left > 0");
        for i in 0..self.ops.len() {
            if taken[i] || self.ops[i].invoked_ns >= min_ret {
                continue;
            }
            let op = &self.ops[i];
            let mut st = state.clone();
            let resp = self.spec.apply(&mut st, &op.request);
            if let Some(expected) = &op.response {
                if *expected != resp {
                    continue;
                }
            }
            taken[i] = true;
            let left = completed_left - usize::from(op.completed());
            if self.dfs(taken, &st, left) {
                return true;
            }
            taken[i] = false;
            if self.exhausted {
                return false;
            }
        }
        false
    }
}

fn first_divergence<S: SequentialSpec>(ops: &[OpRecord], spec: &S) -> Option<OpRecord> {
    let mut done: Vec<&OpRecord> = ops.iter().filter(|o| o.completed()).collect();
    done.sort_by_key(|o| {
        (
            o.returned_ns.expect("completed"),
            o.invoked_ns,
            o.client,
            o.seq,
        )
    });
    let mut st = spec.initial();
    for op in done {
        let resp = spec.apply(&mut st, &op.request);
        if op.response.as_ref() != Some(&resp) {
            return Some(op.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single register: request `[1, v]` writes v and returns the old
    /// value; `[2]` reads.
    struct Register;

    impl SequentialSpec for Register {
        type State = u8;
        fn initial(&self) -> u8 {
            0
        }
        fn apply(&self, state: &mut u8, request: &[u8]) -> Bytes {
            match request[0] {
                1 => {
                    let old = *state;
                    *state = request[1];
                    Bytes::copy_from_slice(&[old])
                }
                _ => Bytes::copy_from_slice(&[*state]),
            }
        }
    }

    fn op(
        client: u64,
        seq: u64,
        request: &[u8],
        invoked: u64,
        returned: u64,
        response: &[u8],
    ) -> OpRecord {
        OpRecord {
            client,
            seq,
            request: request.to_vec(),
            invoked_ns: invoked,
            returned_ns: Some(returned),
            response: Some(Bytes::copy_from_slice(response)),
        }
    }

    #[test]
    fn sequential_history_linearizes() {
        let h = vec![
            op(1, 1, &[1, 7], 0, 10, &[0]),
            op(1, 2, &[2], 20, 30, &[7]),
            op(2, 1, &[1, 9], 40, 50, &[7]),
            op(2, 2, &[2], 60, 70, &[9]),
        ];
        check_history(&h, &Register, 1).unwrap();
    }

    #[test]
    fn concurrent_overlap_linearizes_in_either_order() {
        // Two overlapping writes; a later read sees one of them — the
        // order is decided by the read, not real time.
        let h = vec![
            op(1, 1, &[1, 5], 0, 100, &[0]),
            op(2, 1, &[1, 6], 0, 100, &[5]),
            op(1, 2, &[2], 200, 210, &[6]),
        ];
        check_history(&h, &Register, 2).unwrap();
    }

    #[test]
    fn stale_read_is_rejected_and_pins_the_operation() {
        // The read strictly follows the write yet returns the old value.
        let h = vec![op(1, 1, &[1, 7], 0, 10, &[0]), op(2, 1, &[2], 20, 30, &[0])];
        let v = check_history(&h, &Register, 42).unwrap_err();
        assert_eq!(v.check, "linearizability");
        assert_eq!(v.seed, 42);
        let msg = v.to_string();
        let culprit = v.op.expect("culprit pinned");
        assert_eq!((culprit.client, culprit.seq), (2, 1));
        assert!(msg.contains("seed 42"), "{msg}");
        assert!(msg.contains("client 2"), "{msg}");
    }

    #[test]
    fn pending_operation_may_take_effect_or_not() {
        // A write that never returned may explain a read...
        let pending = OpRecord {
            client: 1,
            seq: 1,
            request: vec![1, 3],
            invoked_ns: 0,
            returned_ns: None,
            response: None,
        };
        let h = vec![pending.clone(), op(2, 1, &[2], 50, 60, &[3])];
        check_history(&h, &Register, 3).unwrap();
        // ...and equally may have had no effect.
        let h = vec![pending, op(2, 1, &[2], 50, 60, &[0])];
        check_history(&h, &Register, 3).unwrap();
    }

    #[test]
    fn real_time_order_is_enforced() {
        // w(5) completes before w(6) starts; a read after both must not
        // see 5.
        let h = vec![
            op(1, 1, &[1, 5], 0, 10, &[0]),
            op(1, 2, &[1, 6], 20, 30, &[5]),
            op(2, 1, &[2], 40, 50, &[5]),
        ];
        let v = check_history(&h, &Register, 4).unwrap_err();
        assert_eq!(v.check, "linearizability");
    }
}
