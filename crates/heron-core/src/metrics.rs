//! Measurement plumbing for the paper's evaluation.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-request latency breakdown recorded at a replica (Fig. 6's stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breakdown {
    /// Multicast submit → delivery at the replica.
    pub ordering_ns: u64,
    /// Delivery → pickup by an executor: the dependency-aware dispatch
    /// wait of the P-SMR executor pool. Exactly zero on the serial
    /// (width 1) path, where a command is picked up at delivery.
    pub parallel_ns: u64,
    /// Phase 2 + Phase 4 barrier time.
    pub coordination_ns: u64,
    /// Reading + compute + writing.
    pub execution_ns: u64,
    /// Number of partitions the request addressed.
    pub partitions: u16,
    /// The partition of the replica that recorded this sample. The
    /// client-perceived path is the *home* (lowest) involved partition:
    /// it executes the full request, while the other partitions partially
    /// execute and then wait in Phase 4.
    pub at_partition: u16,
}

/// Wait-for-all statistics per partition (Table I).
#[derive(Debug, Default)]
pub struct DelayCounters {
    /// Multi-partition transactions coordinated.
    pub total: AtomicU64,
    /// Transactions that had to wait beyond the majority for stragglers.
    pub delayed: AtomicU64,
    /// Total extra wait, nanoseconds.
    pub delay_sum_ns: AtomicU64,
}

impl DelayCounters {
    /// `(delayed fraction, average delay)` — Table I's two columns.
    ///
    /// The fraction is `delayed / total` (how many coordinated transactions
    /// waited at all) and the average is `delay_sum / delayed` (mean extra
    /// wait *of the delayed ones* — Table I reports the delay conditional
    /// on being delayed, not amortized over all transactions). Both
    /// denominators are guarded the same way: a zero count yields zero
    /// rather than a division panic or NaN.
    pub fn summary(&self) -> (f64, Duration) {
        let total = self.total.load(Ordering::Relaxed);
        let delayed = self.delayed.load(Ordering::Relaxed);
        let sum = self.delay_sum_ns.load(Ordering::Relaxed);
        let frac = match total {
            0 => 0.0,
            t => delayed as f64 / t as f64,
        };
        let avg = match delayed {
            0 => Duration::ZERO,
            d => Duration::from_nanos(sum / d),
        };
        (frac, avg)
    }
}

/// A log-bucketed histogram (HDR-style): 16 linear sub-buckets per power of
/// two, giving ≤ 1/16 (≈ 6%) relative quantile error over the full `u64`
/// range with a fixed 976-bucket footprint and lock-free recording.
///
/// Values recorded through [`Histogram::record_tagged`] additionally compete
/// for the top-[`EXEMPLAR_K`] exemplar slots: the slowest tagged samples keep
/// their tag (a request uid), so tail quantiles can be traced back to the
/// concrete requests that produced them (Sim-Prof's p999 attribution).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// `(value, tag)` pairs for the largest tagged samples, sorted
    /// descending by value (ties broken by smaller tag, deterministically).
    exemplars: Mutex<Vec<(u64, u64)>>,
}

/// How many tail exemplars each histogram retains.
pub const EXEMPLAR_K: usize = 8;

/// Buckets: values below 16 map 1:1; above, the top 4 bits after the
/// leading one select a linear sub-bucket within the value's power of two.
const HIST_BUCKETS: usize = 976;

fn hist_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // ≥ 4
    let sub = ((v >> (msb - 4)) & 0xF) as usize;
    ((msb - 3) << 4) + sub
}

fn hist_value(index: usize) -> u64 {
    if index < 16 {
        return index as u64;
    }
    let msb = (index >> 4) + 3;
    (1u64 << msb) + (((index & 0xF) as u64) << (msb - 4))
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplars: Mutex::new(Vec::new()),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.quantile(0.5))
            .finish()
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[hist_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one value carrying a tag (a request uid; 0 = untagged).
    /// Tagged values compete for the top-[`EXEMPLAR_K`] exemplar slots.
    pub fn record_tagged(&self, v: u64, tag: u64) {
        self.record(v);
        if tag == 0 {
            return;
        }
        let mut ex = self.exemplars.lock();
        ex.push((v, tag));
        ex.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ex.truncate(EXEMPLAR_K);
    }

    /// The retained `(value, tag)` exemplars, largest value first.
    pub fn exemplars(&self) -> Vec<(u64, u64)> {
        self.exemplars.lock().clone()
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        match self.count() {
            0 => 0,
            n => self.sum.load(Ordering::Relaxed) / n,
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0.0–1.0, clamped), resolved to the lower bound of
    /// its log bucket; 0 when empty. `quantile(0.5)`, `(0.99)`, `(0.999)`
    /// are the p50/p99/p999 the registry reports.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((n as f64 * q).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return hist_value(i).min(self.max());
            }
        }
        self.max()
    }

    /// `(count, mean, p50, p99, p999, max)` in one call.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Mean value.
    pub mean: u64,
    /// Median (log-bucket resolution).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest sample.
    pub max: u64,
}

/// A named monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (used when importing an external atomic).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named [`Histogram`]s and [`Counter`]s: the uniform surface
/// over what used to be ad-hoc atomics scattered across the stack. Gated
/// behind the same knob as tracing ([`crate::HeronConfig::tracing`]); the
/// only hot-path cost when disabled is one relaxed load
/// ([`MetricsRegistry::is_enabled`]).
///
/// # Naming scheme
///
/// Every name is `<subsystem>.<measure>[_<unit>]`, all lowercase:
///
/// * `<subsystem>` — the producing layer: `client`, `exec`, `fabric`,
///   `recover`, `explore`, `pool`.
/// * `<measure>` — a noun phrase in `snake_case`. Event counts are the bare
///   plural verb/noun (`fabric.reads`, `explore.preemptions`); byte counts
///   are `<verb>_bytes` (`fabric.read_bytes`); high-water marks end in
///   `_peak` (`explore.ready_peak`).
/// * `_<unit>` — appended when the value has one: `_ns` for virtual
///   nanoseconds (`client.latency_ns`, `recover.time_ns`). Unitless counts
///   take no suffix.
///
/// Importers ([`import_fabric`](Self::import_fabric),
/// [`import_explore`](Self::import_explore)) translate source-struct field
/// names into this scheme; the struct fields themselves are not part of the
/// metric namespace.
#[derive(Default)]
pub struct MetricsRegistry {
    enabled: std::sync::atomic::AtomicBool,
    hists: Mutex<std::collections::BTreeMap<&'static str, std::sync::Arc<Histogram>>>,
    counters: Mutex<std::collections::BTreeMap<&'static str, std::sync::Arc<Counter>>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .field("histograms", &self.hists.lock().len())
            .field("counters", &self.counters.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// One relaxed load: the gate every hot-path recording site checks.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> std::sync::Arc<Histogram> {
        std::sync::Arc::clone(self.hists.lock().entry(name).or_default())
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> std::sync::Arc<Counter> {
        std::sync::Arc::clone(self.counters.lock().entry(name).or_default())
    }

    /// Snapshot of every histogram, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        self.hists
            .lock()
            .iter()
            .map(|(name, h)| (*name, h.snapshot()))
            .collect()
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .lock()
            .iter()
            .map(|(name, c)| (*name, c.get()))
            .collect()
    }

    /// Imports the fabric's verb counters under `fabric.*` names, giving
    /// benches one uniform read path instead of poking the raw atomics.
    pub fn import_fabric(&self, stats: &rdma_sim::FabricStats) {
        for (name, value) in [
            ("fabric.reads", &stats.reads),
            ("fabric.writes", &stats.writes),
            ("fabric.posted_writes", &stats.posted_writes),
            ("fabric.cas_ops", &stats.cas_ops),
            ("fabric.sends", &stats.sends),
            ("fabric.doorbells", &stats.doorbells),
            ("fabric.read_bytes", &stats.bytes_read),
            ("fabric.write_bytes", &stats.bytes_written),
        ] {
            self.counter(name).set(value.load(Ordering::Relaxed));
        }
    }

    /// Imports one schedule-exploration run's counters under `explore.*`
    /// names (cumulative across runs imported into the same registry), so
    /// exploration sweeps surface through the same read path as every
    /// other subsystem.
    pub fn import_explore(&self, report: &sim::ExploreReport) {
        self.counter("explore.schedules").add(1);
        self.counter("explore.steps").add(report.steps);
        self.counter("explore.preemptions").add(report.preemptions);
        self.counter("explore.violations")
            .add(report.violations.len() as u64);
        self.counter("explore.progress").add(report.progress);
        // High-water marks, not sums.
        let update_max = |name, v: u64| {
            let c = self.counter(name);
            if v > c.get() {
                c.set(v);
            }
        };
        update_max("explore.ready_peak", report.max_ready as u64);
        update_max("explore.wait_graph_peak", report.max_wait_graph as u64);
    }
}

/// One completed state transfer (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Payload bytes shipped (raw slot bytes).
    pub bytes: u64,
    /// Requester-observed duration: request written → status cleared.
    pub duration_ns: u64,
    /// Of the shipped bytes, how many belonged to `Native` objects (which
    /// paid (de)serialization).
    pub native_bytes: u64,
}

/// Cluster-wide metrics. Cheap to clone (shared handle).
#[derive(Default)]
pub struct Metrics {
    /// Client-observed end-to-end latencies (closed loop), ns.
    pub latencies: Mutex<Vec<u64>>,
    /// Completed client requests.
    pub completed: AtomicU64,
    /// Per-replica breakdowns (recorded by every replica of the lowest
    /// involved partition).
    pub breakdowns: Mutex<Vec<Breakdown>>,
    /// Wait-for-all counters, indexed by partition.
    pub delays: Vec<DelayCounters>,
    /// Completed state transfers.
    pub transfers: Mutex<Vec<TransferRecord>>,
    /// Requests skipped because state transfer already covered them.
    pub skipped_requests: AtomicU64,
    /// State transfers initiated (by laggers).
    pub transfers_started: AtomicU64,
    /// Named histograms and counters; disabled (one relaxed load per
    /// recording site) unless [`crate::HeronConfig::tracing`] is on.
    registry: MetricsRegistry,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics")
            .field("completed", &self.completed.load(Ordering::Relaxed))
            .field("latency_samples", &self.latencies.lock().len())
            .finish()
    }
}

impl Metrics {
    /// Creates metrics for a deployment of `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        Metrics {
            delays: (0..partitions).map(|_| DelayCounters::default()).collect(),
            ..Default::default()
        }
    }

    /// The cluster's named-metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Records a client-observed latency.
    pub fn record_latency(&self, d: Duration) {
        self.record_latency_tagged(d, 0);
    }

    /// Records a client-observed latency tagged with the request uid, so
    /// the `client.latency_ns` histogram can retain it as a tail exemplar
    /// (uid 0 = untagged, exemplar-exempt).
    pub fn record_latency_tagged(&self, d: Duration, uid: u64) {
        let ns = d.as_nanos() as u64;
        self.latencies.lock().push(ns);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if self.registry.is_enabled() {
            self.registry
                .histogram("client.latency_ns")
                .record_tagged(ns, uid);
        }
    }

    /// Records a replica-side breakdown sample.
    pub fn record_breakdown(&self, b: Breakdown) {
        if self.registry.is_enabled() {
            let r = &self.registry;
            r.histogram("exec.ordering_ns").record(b.ordering_ns);
            r.histogram("exec.parallel_ns").record(b.parallel_ns);
            r.histogram("exec.coordination_ns")
                .record(b.coordination_ns);
            r.histogram("exec.execution_ns").record(b.execution_ns);
        }
        self.breakdowns.lock().push(b);
    }

    /// Mean of the recorded latencies.
    pub fn mean_latency(&self) -> Duration {
        let l = self.latencies.lock();
        if l.is_empty() {
            return Duration::ZERO;
        }
        Duration::from_nanos(l.iter().sum::<u64>() / l.len() as u64)
    }

    /// The `q`-quantile (0.0–1.0, clamped) of recorded latencies; zero
    /// when no samples were recorded.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        let mut l = self.latencies.lock().clone();
        if l.is_empty() {
            return Duration::ZERO;
        }
        l.sort_unstable();
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let idx = ((l.len() - 1) as f64 * q).round() as usize;
        Duration::from_nanos(l[idx])
    }

    /// Sorted copy of all latency samples (for CDF plots).
    pub fn latency_samples_sorted(&self) -> Vec<u64> {
        let mut l = self.latencies.lock().clone();
        l.sort_unstable();
        l
    }

    /// Mean breakdown over samples with the given partition count filter
    /// (`None` = all): `(ordering, coordination, execution)`.
    pub fn mean_breakdown(&self, partitions: Option<u16>) -> (Duration, Duration, Duration) {
        let b = self.breakdowns.lock();
        let samples: Vec<&Breakdown> = b
            .iter()
            .filter(|s| partitions.map(|p| s.partitions == p).unwrap_or(true))
            .collect();
        if samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        let n = samples.len() as u64;
        let sum = samples.iter().fold((0u64, 0u64, 0u64), |acc, s| {
            (
                acc.0 + s.ordering_ns,
                acc.1 + s.coordination_ns,
                acc.2 + s.execution_ns,
            )
        });
        (
            Duration::from_nanos(sum.0 / n),
            Duration::from_nanos(sum.1 / n),
            Duration::from_nanos(sum.2 / n),
        )
    }

    /// Throughput over a measurement window; zero for an empty window
    /// (instead of `inf`/`NaN` from the division).
    pub fn throughput(&self, window: Duration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.completed.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats() {
        let m = Metrics::new(2);
        for us in [10u64, 20, 30, 40] {
            m.record_latency(Duration::from_micros(us));
        }
        assert_eq!(m.mean_latency(), Duration::from_micros(25));
        assert_eq!(m.latency_quantile(0.0), Duration::from_micros(10));
        assert_eq!(m.latency_quantile(1.0), Duration::from_micros(40));
        assert_eq!(m.completed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn delay_counters_summarize() {
        let c = DelayCounters::default();
        c.total.store(100, Ordering::Relaxed);
        c.delayed.store(8, Ordering::Relaxed);
        c.delay_sum_ns.store(8 * 4_000, Ordering::Relaxed);
        let (frac, avg) = c.summary();
        assert!((frac - 0.08).abs() < 1e-9);
        assert_eq!(avg, Duration::from_nanos(4_000));
    }

    #[test]
    fn delay_counters_zero_total_is_all_zero() {
        let c = DelayCounters::default();
        let (frac, avg) = c.summary();
        assert_eq!(frac, 0.0);
        assert_eq!(avg, Duration::ZERO);
    }

    #[test]
    fn delay_counters_zero_delayed_has_zero_average() {
        // Transactions coordinated, none delayed: the fraction is 0 and the
        // conditional average must be 0, not a division by zero.
        let c = DelayCounters::default();
        c.total.store(50, Ordering::Relaxed);
        let (frac, avg) = c.summary();
        assert_eq!(frac, 0.0);
        assert_eq!(avg, Duration::ZERO);
    }

    #[test]
    fn delay_counters_all_delayed() {
        let c = DelayCounters::default();
        c.total.store(10, Ordering::Relaxed);
        c.delayed.store(10, Ordering::Relaxed);
        c.delay_sum_ns.store(10 * 1_500, Ordering::Relaxed);
        let (frac, avg) = c.summary();
        assert!((frac - 1.0).abs() < 1e-9);
        assert_eq!(avg, Duration::from_nanos(1_500));
    }

    #[test]
    fn histogram_buckets_are_contiguous_and_monotone() {
        // Every value maps to a bucket whose representative is ≤ the value
        // and within 1/16 of it; indices are monotone in the value.
        let mut prev = 0;
        for v in (0..2_000u64).chain([1 << 20, (1 << 20) + 12_345, u64::MAX]) {
            let i = hist_index(v);
            assert!(i < HIST_BUCKETS);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            let lo = hist_value(i);
            assert!(lo <= v);
            assert!(v - lo <= (v >> 4).max(1), "bucket too wide at {v}");
        }
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in 1..=1000u64 {
            h.record(v * 1_000); // 1µs .. 1ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        // Log-bucket resolution: within 1/16 of the exact answer.
        assert!((469_000..=500_000).contains(&p50), "p50={p50}");
        assert!((928_000..=990_000).contains(&p99), "p99={p99}");
        assert!(p999 >= p99 && p999 <= 1_000_000, "p999={p999}");
        let p100 = h.quantile(1.0);
        assert!(p100 >= p999 && p100 <= h.max());
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.mean(), 500_500);
    }

    #[test]
    fn registry_is_gated_and_deterministic() {
        let m = Metrics::new(1);
        // Disabled: record paths don't populate the registry.
        m.record_latency(Duration::from_micros(10));
        assert_eq!(m.registry().histogram_snapshots().len(), 0);
        // Enabled: they do, and names come back sorted.
        m.registry().enable();
        m.record_latency(Duration::from_micros(10));
        m.record_breakdown(Breakdown {
            ordering_ns: 5,
            parallel_ns: 0,
            coordination_ns: 7,
            execution_ns: 9,
            partitions: 2,
            at_partition: 0,
        });
        let names: Vec<&str> = m
            .registry()
            .histogram_snapshots()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            names,
            [
                "client.latency_ns",
                "exec.coordination_ns",
                "exec.execution_ns",
                "exec.ordering_ns",
                "exec.parallel_ns"
            ]
        );
        assert_eq!(m.registry().histogram("client.latency_ns").count(), 1);
        m.registry().counter("fabric.reads").add(3);
        assert_eq!(m.registry().counter_values(), vec![("fabric.reads", 3)]);
    }

    #[test]
    fn exemplars_keep_the_k_slowest_tagged_samples() {
        let h = Histogram::default();
        for uid in 1..=20u64 {
            h.record_tagged(uid * 100, uid);
        }
        h.record_tagged(5, 0); // untagged: counted, never an exemplar
        let ex = h.exemplars();
        assert_eq!(ex.len(), EXEMPLAR_K);
        assert_eq!(ex[0], (2000, 20), "slowest first");
        assert_eq!(ex[EXEMPLAR_K - 1], (1300, 13));
        assert!(ex.windows(2).all(|w| w[0].0 >= w[1].0), "sorted descending");
        assert_eq!(h.count(), 21, "tagging never changes the distribution");
    }

    #[test]
    fn importer_names_follow_the_documented_scheme() {
        // Byte counts are `<verb>_bytes`, peaks end in `_peak`: the drift
        // the scheme in the `MetricsRegistry` docs exists to prevent.
        let m = Metrics::new(1);
        m.registry().enable();
        m.registry()
            .import_fabric(&rdma_sim::FabricStats::default());
        let names: Vec<&str> = m
            .registry()
            .counter_values()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert!(names.contains(&"fabric.read_bytes"));
        assert!(names.contains(&"fabric.write_bytes"));
        assert!(!names.contains(&"fabric.bytes_read"), "old name retired");
        for n in names {
            let (subsys, rest) = n.split_once('.').expect("subsystem prefix");
            assert!(!subsys.is_empty() && !rest.is_empty());
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "non-conforming name {n}"
            );
        }
    }

    #[test]
    fn breakdown_filtering() {
        let m = Metrics::new(1);
        m.record_breakdown(Breakdown {
            ordering_ns: 10,
            parallel_ns: 0,
            coordination_ns: 0,
            execution_ns: 20,
            partitions: 1,
            at_partition: 0,
        });
        m.record_breakdown(Breakdown {
            ordering_ns: 30,
            parallel_ns: 2,
            coordination_ns: 4,
            execution_ns: 40,
            partitions: 4,
            at_partition: 0,
        });
        let (o, c, e) = m.mean_breakdown(Some(4));
        assert_eq!(
            (o, c, e),
            (
                Duration::from_nanos(30),
                Duration::from_nanos(4),
                Duration::from_nanos(40)
            )
        );
        let (o, _, _) = m.mean_breakdown(None);
        assert_eq!(o, Duration::from_nanos(20));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(1);
        assert_eq!(m.mean_latency(), Duration::ZERO);
        assert_eq!(m.latency_quantile(0.5), Duration::ZERO);
        let (o, c, e) = m.mean_breakdown(None);
        assert_eq!((o, c, e), (Duration::ZERO, Duration::ZERO, Duration::ZERO));
    }

    #[test]
    fn throughput_of_empty_window_is_zero_not_nan() {
        let m = Metrics::new(1);
        assert_eq!(m.throughput(Duration::ZERO), 0.0);
        m.record_latency(Duration::from_micros(5));
        // Even with completions, a zero window must not divide by zero.
        assert_eq!(m.throughput(Duration::ZERO), 0.0);
        assert_eq!(m.throughput(Duration::from_secs(1)), 1.0);
    }

    #[test]
    fn quantile_arguments_are_clamped() {
        let m = Metrics::new(1);
        for us in [10u64, 20, 30] {
            m.record_latency(Duration::from_micros(us));
        }
        assert_eq!(m.latency_quantile(-1.0), Duration::from_micros(10));
        assert_eq!(m.latency_quantile(2.0), Duration::from_micros(30));
        assert_eq!(m.latency_quantile(f64::NAN), Duration::from_micros(10));
    }
}
