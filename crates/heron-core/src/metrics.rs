//! Measurement plumbing for the paper's evaluation.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-request latency breakdown recorded at a replica (Fig. 6's stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breakdown {
    /// Multicast submit → delivery at the replica.
    pub ordering_ns: u64,
    /// Phase 2 + Phase 4 barrier time.
    pub coordination_ns: u64,
    /// Reading + compute + writing.
    pub execution_ns: u64,
    /// Number of partitions the request addressed.
    pub partitions: u16,
    /// The partition of the replica that recorded this sample. The
    /// client-perceived path is the *home* (lowest) involved partition:
    /// it executes the full request, while the other partitions partially
    /// execute and then wait in Phase 4.
    pub at_partition: u16,
}

/// Wait-for-all statistics per partition (Table I).
#[derive(Debug, Default)]
pub struct DelayCounters {
    /// Multi-partition transactions coordinated.
    pub total: AtomicU64,
    /// Transactions that had to wait beyond the majority for stragglers.
    pub delayed: AtomicU64,
    /// Total extra wait, nanoseconds.
    pub delay_sum_ns: AtomicU64,
}

impl DelayCounters {
    /// `(delayed fraction, average delay)` — Table I's two columns.
    pub fn summary(&self) -> (f64, Duration) {
        let total = self.total.load(Ordering::Relaxed);
        let delayed = self.delayed.load(Ordering::Relaxed);
        let sum = self.delay_sum_ns.load(Ordering::Relaxed);
        let frac = match total {
            0 => 0.0,
            t => delayed as f64 / t as f64,
        };
        let avg = sum
            .checked_div(delayed)
            .map(Duration::from_nanos)
            .unwrap_or(Duration::ZERO);
        (frac, avg)
    }
}

/// One completed state transfer (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Payload bytes shipped (raw slot bytes).
    pub bytes: u64,
    /// Requester-observed duration: request written → status cleared.
    pub duration_ns: u64,
    /// Of the shipped bytes, how many belonged to `Native` objects (which
    /// paid (de)serialization).
    pub native_bytes: u64,
}

/// Cluster-wide metrics. Cheap to clone (shared handle).
#[derive(Default)]
pub struct Metrics {
    /// Client-observed end-to-end latencies (closed loop), ns.
    pub latencies: Mutex<Vec<u64>>,
    /// Completed client requests.
    pub completed: AtomicU64,
    /// Per-replica breakdowns (recorded by every replica of the lowest
    /// involved partition).
    pub breakdowns: Mutex<Vec<Breakdown>>,
    /// Wait-for-all counters, indexed by partition.
    pub delays: Vec<DelayCounters>,
    /// Completed state transfers.
    pub transfers: Mutex<Vec<TransferRecord>>,
    /// Requests skipped because state transfer already covered them.
    pub skipped_requests: AtomicU64,
    /// State transfers initiated (by laggers).
    pub transfers_started: AtomicU64,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics")
            .field("completed", &self.completed.load(Ordering::Relaxed))
            .field("latency_samples", &self.latencies.lock().len())
            .finish()
    }
}

impl Metrics {
    /// Creates metrics for a deployment of `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        Metrics {
            delays: (0..partitions).map(|_| DelayCounters::default()).collect(),
            ..Default::default()
        }
    }

    /// Records a client-observed latency.
    pub fn record_latency(&self, d: Duration) {
        self.latencies.lock().push(d.as_nanos() as u64);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a replica-side breakdown sample.
    pub fn record_breakdown(&self, b: Breakdown) {
        self.breakdowns.lock().push(b);
    }

    /// Mean of the recorded latencies.
    pub fn mean_latency(&self) -> Duration {
        let l = self.latencies.lock();
        if l.is_empty() {
            return Duration::ZERO;
        }
        Duration::from_nanos(l.iter().sum::<u64>() / l.len() as u64)
    }

    /// The `q`-quantile (0.0–1.0, clamped) of recorded latencies; zero
    /// when no samples were recorded.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        let mut l = self.latencies.lock().clone();
        if l.is_empty() {
            return Duration::ZERO;
        }
        l.sort_unstable();
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let idx = ((l.len() - 1) as f64 * q).round() as usize;
        Duration::from_nanos(l[idx])
    }

    /// Sorted copy of all latency samples (for CDF plots).
    pub fn latency_samples_sorted(&self) -> Vec<u64> {
        let mut l = self.latencies.lock().clone();
        l.sort_unstable();
        l
    }

    /// Mean breakdown over samples with the given partition count filter
    /// (`None` = all): `(ordering, coordination, execution)`.
    pub fn mean_breakdown(&self, partitions: Option<u16>) -> (Duration, Duration, Duration) {
        let b = self.breakdowns.lock();
        let samples: Vec<&Breakdown> = b
            .iter()
            .filter(|s| partitions.map(|p| s.partitions == p).unwrap_or(true))
            .collect();
        if samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        let n = samples.len() as u64;
        let sum = samples.iter().fold((0u64, 0u64, 0u64), |acc, s| {
            (
                acc.0 + s.ordering_ns,
                acc.1 + s.coordination_ns,
                acc.2 + s.execution_ns,
            )
        });
        (
            Duration::from_nanos(sum.0 / n),
            Duration::from_nanos(sum.1 / n),
            Duration::from_nanos(sum.2 / n),
        )
    }

    /// Throughput over a measurement window; zero for an empty window
    /// (instead of `inf`/`NaN` from the division).
    pub fn throughput(&self, window: Duration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.completed.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats() {
        let m = Metrics::new(2);
        for us in [10u64, 20, 30, 40] {
            m.record_latency(Duration::from_micros(us));
        }
        assert_eq!(m.mean_latency(), Duration::from_micros(25));
        assert_eq!(m.latency_quantile(0.0), Duration::from_micros(10));
        assert_eq!(m.latency_quantile(1.0), Duration::from_micros(40));
        assert_eq!(m.completed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn delay_counters_summarize() {
        let c = DelayCounters::default();
        c.total.store(100, Ordering::Relaxed);
        c.delayed.store(8, Ordering::Relaxed);
        c.delay_sum_ns.store(8 * 4_000, Ordering::Relaxed);
        let (frac, avg) = c.summary();
        assert!((frac - 0.08).abs() < 1e-9);
        assert_eq!(avg, Duration::from_nanos(4_000));
    }

    #[test]
    fn breakdown_filtering() {
        let m = Metrics::new(1);
        m.record_breakdown(Breakdown {
            ordering_ns: 10,
            coordination_ns: 0,
            execution_ns: 20,
            partitions: 1,
            at_partition: 0,
        });
        m.record_breakdown(Breakdown {
            ordering_ns: 30,
            coordination_ns: 4,
            execution_ns: 40,
            partitions: 4,
            at_partition: 0,
        });
        let (o, c, e) = m.mean_breakdown(Some(4));
        assert_eq!(
            (o, c, e),
            (
                Duration::from_nanos(30),
                Duration::from_nanos(4),
                Duration::from_nanos(40)
            )
        );
        let (o, _, _) = m.mean_breakdown(None);
        assert_eq!(o, Duration::from_nanos(20));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(1);
        assert_eq!(m.mean_latency(), Duration::ZERO);
        assert_eq!(m.latency_quantile(0.5), Duration::ZERO);
        let (o, c, e) = m.mean_breakdown(None);
        assert_eq!((o, c, e), (Duration::ZERO, Duration::ZERO, Duration::ZERO));
    }

    #[test]
    fn throughput_of_empty_window_is_zero_not_nan() {
        let m = Metrics::new(1);
        assert_eq!(m.throughput(Duration::ZERO), 0.0);
        m.record_latency(Duration::from_micros(5));
        // Even with completions, a zero window must not divide by zero.
        assert_eq!(m.throughput(Duration::ZERO), 0.0);
        assert_eq!(m.throughput(Duration::from_secs(1)), 1.0);
    }

    #[test]
    fn quantile_arguments_are_clamped() {
        let m = Metrics::new(1);
        for us in [10u64, 20, 30] {
            m.record_latency(Duration::from_micros(us));
        }
        assert_eq!(m.latency_quantile(-1.0), Duration::from_micros(10));
        assert_eq!(m.latency_quantile(2.0), Duration::from_micros(30));
        assert_eq!(m.latency_quantile(f64::NAN), Duration::from_micros(10));
    }
}
