//! Durable checkpoints and cold-restart recovery.
//!
//! With [`crate::DurabilityConfig`] set, every replica runs a periodic
//! *checkpointer* process: at a quiescent executor boundary it serializes
//! the partition state through the application's
//! [`crate::StateMachine::snapshot`] hook, stamps the image with the
//! executor's commit watermark and the ordering epoch, persists it to the
//! replica's durable namespace, and truncates both the in-memory update
//! log and the ordering layer's WAL behind that horizon — so neither log
//! grows without bound.
//!
//! A replica that loses power (registered memory wiped) rebuilds from the
//! checkpoint plus the WAL tail: it installs the image through
//! [`crate::StateMachine::install`], resets its watermarks to the
//! checkpoint bound, and replays every WAL frame past the bound through
//! the normal delivery path. Recovery therefore costs real (virtual)
//! time — the checkpoint read and the replayed tail — which the
//! `recovery_bench` benchmark measures against tail length and checkpoint
//! interval.
//!
//! # Consistency with the cross-replica checker
//!
//! The default snapshot image is the raw dual-version slot bytes of every
//! hosted object: exactly what state transfer ships and what the
//! consistency checker compares byte-for-byte across replicas. A restart
//! behaves like a state transfer whose responder is the disk — it resets
//! the execution trace and records a `('t', bound)` entry, so the
//! checker's settled-coverage rule treats the pre-checkpoint prefix as
//! transferred-to, and replayed commands append fresh `'e'` entries past
//! the bound.

use crate::app::SnapshotStore;
use crate::cluster::ReplicaShared;
use crate::layout::{decode_records, encode_record};
use amcast::GroupId;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The checkpoint file name inside a replica's durable namespace.
pub const CKPT_FILE: &str = "ckpt";

/// Checkpoint file magic ("HRNCKPT1"), doubling as a format version.
const CKPT_MAGIC: u64 = 0x4852_4e43_4b50_5431;

/// Fixed header: magic, bound, epoch, image length.
const CKPT_HDR: usize = 4 * 8;

/// The metadata a checkpoint is stamped with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Commit watermark (raw timestamp): the image reflects exactly the
    /// commands with timestamps `<= bound`.
    pub bound: u64,
    /// Ordering-layer epoch in force when the checkpoint was taken.
    pub epoch: u64,
    /// Application image size in bytes.
    pub image_bytes: usize,
}

/// Serializes a store through the engine's default image format: one raw
/// dual-version slot record per hosted object, in id order. Byte-exact —
/// [`install_state`] reproduces the store bit for bit. Applications'
/// [`crate::StateMachine::snapshot`] hooks use this as their baseline.
pub fn encode_state(store: &dyn SnapshotStore) -> Vec<u8> {
    let mut buf = Vec::new();
    for oid in store.object_ids() {
        if let Some(raw) = store.raw_slot(oid) {
            buf.extend_from_slice(&encode_record(oid, &raw));
        }
    }
    buf
}

/// Installs an [`encode_state`] image into a (possibly wiped) store.
pub fn install_state(image: &[u8], store: &dyn SnapshotStore) {
    for (oid, raw) in decode_records(image) {
        store.install_slot(oid, raw);
    }
}

/// FNV-1a digest of every hosted object's raw slot image, in id order:
/// equal state ⇒ equal digest. The checkpoint property tests rely on
/// `digest(install(snapshot(s))) == digest(s)` at any commit prefix.
pub fn state_digest(store: &dyn SnapshotStore) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    };
    for oid in store.object_ids() {
        if let Some(raw) = store.raw_slot(oid) {
            eat(&oid.0.to_le_bytes());
            eat(&(raw.len() as u64).to_le_bytes());
            eat(&raw);
        }
    }
    h
}

/// Frames an application image into the durable checkpoint file format.
fn encode_file(bound: u64, epoch: u64, image: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(CKPT_HDR + image.len());
    buf.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    buf.extend_from_slice(&bound.to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&(image.len() as u64).to_le_bytes());
    buf.extend_from_slice(image);
    buf
}

/// Splits a checkpoint file into its metadata and application image.
///
/// # Panics
///
/// Panics on a malformed file: the storage model never tears writes, so
/// corruption here is a codec bug, not a simulated fault.
pub(crate) fn decode_file(file: &[u8]) -> (CheckpointMeta, &[u8]) {
    assert!(file.len() >= CKPT_HDR, "checkpoint file too short");
    let word = |i: usize| u64::from_le_bytes(file[i * 8..(i + 1) * 8].try_into().expect("word"));
    assert_eq!(word(0), CKPT_MAGIC, "bad checkpoint magic");
    let (bound, epoch, len) = (word(1), word(2), word(3) as usize);
    assert_eq!(file.len(), CKPT_HDR + len, "checkpoint length mismatch");
    (
        CheckpointMeta {
            bound,
            epoch,
            image_bytes: len,
        },
        &file[CKPT_HDR..],
    )
}

/// One checkpointer round: persist a checkpoint at a quiescent boundary
/// and truncate the logs behind it. Returns the metadata of the
/// checkpoint taken, or `None` if the round was skipped (replica dead or
/// busy, nothing new to checkpoint, or a power cycle interrupted the
/// round before truncation).
pub(crate) fn checkpoint_replica(shared: &Arc<ReplicaShared>) -> Option<CheckpointMeta> {
    let disk = shared.disk.as_ref()?;
    let node = &shared.node;
    if !node.is_alive() {
        return None;
    }
    let cfg = &shared.cluster.cfg;
    let interval = cfg.durability.as_ref()?.checkpoint_interval;
    let cycles = node.power_cycles();
    // After a power loss the watermark atomics survive (they live outside
    // registered memory) while the slots are zeros — the store only
    // reflects the current cycle again once the executor's cold restart
    // raises `restored_cycles`. Snapshotting before that would persist a
    // wiped image stamped with a live bound and truncate the WAL the
    // restart still needs.
    if shared.restored_cycles.load(Ordering::SeqCst) != cycles {
        let reg = shared.cluster.metrics.registry();
        if reg.is_enabled() {
            reg.counter("ckpt.skipped_unrestored").add(1);
        }
        return None;
    }
    // A consistent snapshot needs a quiescent request boundary: no
    // executor inside a writing phase, no delivered command still in
    // flight (a multi-partition command parks in its Phase-4 barrier
    // *after* writing, so `in_write_phase == 0` alone does not mean the
    // store stops at the commit watermark), and no inbound state transfer
    // mutating slots underneath us. The executor passes through such a
    // boundary between any two commands; if the replica stays busy for a
    // whole interval, skip the round rather than snapshot a torn state.
    let quiet = {
        // The profiler attributes this wait to the checkpointer's quiesce
        // park rather than a generic condition wait.
        let _wait = sim::prof::parked_scope("ckpt_quiesce");
        node.poll_until_timeout(
            || {
                shared.in_write_phase.load(Ordering::SeqCst) == 0
                    && shared.last_req.load(Ordering::SeqCst)
                        == shared.completed_req.load(Ordering::SeqCst)
                    && shared.transfer.lock().expected == 0
            },
            interval,
        )
    };
    if !quiet || !node.is_alive() || node.power_cycles() != cycles {
        let reg = shared.cluster.metrics.registry();
        if reg.is_enabled() {
            reg.counter("ckpt.skipped_busy").add(1);
        }
        return None;
    }
    // From here to the `disk.put` below runs without yielding (snapshot
    // collection is pure memory work), so the image is exactly the state
    // at `bound`.
    let bound = shared.completed_req.load(Ordering::SeqCst);
    let group = GroupId(shared.partition.0);
    let epoch = shared.cluster.mcast.current_epoch(group, shared.idx);
    let _span = sim::trace::span_args("ckpt.round", bound, &[("bound", bound), ("epoch", epoch)]);
    let image = shared.cluster.app.snapshot(shared.partition, &shared.store);
    let meta = CheckpointMeta {
        bound,
        epoch,
        image_bytes: image.len(),
    };
    // `put` installs the new file atomically at call time, then charges
    // the write + fsync latency — a power loss during the charge leaves
    // the (consistent) new checkpoint in place, never a torn one.
    disk.put(CKPT_FILE, &encode_file(bound, epoch, &image));
    if node.power_cycles() != cycles || !node.is_alive() {
        // The lights went out while the file was flushing. The checkpoint
        // itself is durable and consistent, but the executor is about to
        // rebuild from it — leave the logs alone and let the next round
        // (or the restart path) truncate behind a horizon it re-derives.
        return None;
    }
    // Truncate the in-memory update log behind the horizon. The floor is
    // raised *before* the log shrinks (no yield between the two), so a
    // state-transfer responder either sees the full log or sees the raised
    // floor and falls back to shipping full state — never a truncated log
    // it mistakes for a complete diff.
    shared.log_floor.store(bound, Ordering::SeqCst);
    // Checkpoint-floor watermark raised: progress for the explorer's
    // zero-virtual-time livelock guards.
    sim::note_progress();
    let log_dropped = {
        let mut log = shared.log.lock();
        let before = log.len();
        log.retain(|&(ts, _)| ts > bound);
        before - log.len()
    };
    // Truncate the ordering WAL behind the same horizon (compaction I/O
    // charged here).
    let (dropped, remaining) = shared.cluster.mcast.truncate_wal(group, shared.idx, bound);
    sim::trace::instant("ckpt.truncate", bound);
    let reg = shared.cluster.metrics.registry();
    if reg.is_enabled() {
        reg.counter("ckpt.taken").add(1);
        reg.counter("ckpt.bytes").add(meta.image_bytes as u64);
        reg.counter("wal.truncated_frames").add(dropped as u64);
        reg.counter("log.truncated_entries").add(log_dropped as u64);
        let _ = remaining;
    }
    Some(meta)
}

/// The periodic checkpointer process body (`heron-ckpt-p{p}r{i}`), spawned
/// only when [`crate::DurabilityConfig`] is set: one
/// [`checkpoint_replica`] round per interval, skipping rounds whose
/// watermark has not advanced since the last durable checkpoint.
pub(crate) fn run_checkpointer(shared: Arc<ReplicaShared>) {
    let interval = shared
        .cluster
        .cfg
        .durability
        .as_ref()
        .expect("checkpointer spawned without durability")
        .checkpoint_interval;
    let mut last_bound = 0u64;
    loop {
        sim::sleep(interval);
        if shared.completed_req.load(Ordering::SeqCst) == last_bound {
            continue;
        }
        if let Some(meta) = checkpoint_replica(&shared) {
            last_bound = meta.bound;
        }
    }
}

/// Reads and installs the replica's durable checkpoint (the read latency
/// is charged to the caller — this is the bulk of cold-restart time).
/// Returns the checkpoint's metadata, or `None` if no checkpoint was ever
/// taken.
pub(crate) fn load_checkpoint(shared: &Arc<ReplicaShared>) -> Option<CheckpointMeta> {
    let disk = shared.disk.as_ref()?;
    let file = disk.get(CKPT_FILE)?;
    let (meta, image) = decode_file(&file);
    shared
        .cluster
        .app
        .install(shared.partition, image, &shared.store);
    Some(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VersionedStore;
    use crate::types::ObjectId;
    use amcast::{MsgId, Timestamp};
    use rdma_sim::{Fabric, LatencyModel};

    fn ts(clock: u64) -> Timestamp {
        Timestamp::new(clock, MsgId(clock as u32))
    }

    fn store_with_state() -> (Fabric, VersionedStore) {
        let fabric = Fabric::new(LatencyModel::zero());
        let s = VersionedStore::new(fabric.add_node("n"));
        s.bootstrap(ObjectId(1), b"alpha");
        s.bootstrap(ObjectId(2), b"beta");
        s.set(ObjectId(1), b"alpha-2", ts(10));
        s.set(ObjectId(2), b"beta-2", ts(11));
        s.set(ObjectId(1), b"alpha-3", ts(12));
        (fabric, s)
    }

    #[test]
    fn state_round_trips_bit_exactly() {
        let (fabric, s) = store_with_state();
        let image = encode_state(&s);
        let fresh = VersionedStore::new(fabric.add_node("m"));
        install_state(&image, &fresh);
        assert_eq!(state_digest(&s), state_digest(&fresh));
        // Not just the digest: both versions of every slot byte-match.
        for oid in s.object_ids() {
            let a = s.raw_slot_bytes(s.slot(oid).unwrap());
            let b = fresh.raw_slot_bytes(fresh.slot(oid).unwrap());
            assert_eq!(a, b, "slot image of {oid}");
        }
    }

    #[test]
    fn digest_is_state_sensitive() {
        let (_fabric, s) = store_with_state();
        let before = state_digest(&s);
        s.set(ObjectId(2), b"beta-3", ts(13));
        assert_ne!(before, state_digest(&s));
    }

    #[test]
    fn file_framing_round_trips() {
        let file = encode_file(42, 7, b"image-bytes");
        let (meta, image) = decode_file(&file);
        assert_eq!(
            meta,
            CheckpointMeta {
                bound: 42,
                epoch: 7,
                image_bytes: 11
            }
        );
        assert_eq!(image, b"image-bytes");
    }

    #[test]
    #[should_panic(expected = "bad checkpoint magic")]
    fn bad_magic_is_a_codec_bug() {
        decode_file(&[0u8; CKPT_HDR]);
    }
}
