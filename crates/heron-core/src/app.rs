//! The replicated application interface.

use crate::types::{ObjectId, PartitionId, Placement, StorageKind};
use bytes::Bytes;
use std::collections::HashMap;
use std::time::Duration;

/// The values a request read, keyed by object id.
///
/// Local reads come from the replica's own store; remote reads come from
/// one-sided RDMA reads against replicas of other partitions.
#[derive(Debug, Clone, Default)]
pub struct ReadSet {
    values: HashMap<ObjectId, Bytes>,
}

impl ReadSet {
    /// Creates an empty read set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the value read for `oid`.
    pub fn insert(&mut self, oid: ObjectId, value: Bytes) {
        self.values.insert(oid, value);
    }

    /// The value read for `oid`, if it was in the request's read set.
    pub fn get(&self, oid: ObjectId) -> Option<&Bytes> {
        self.values.get(&oid)
    }

    /// Number of objects read.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing was read.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The outcome of executing a request at one partition.
#[derive(Debug, Clone, Default)]
pub struct Execution {
    /// Objects to update. The engine writes only those local to the
    /// executing partition (each partition updates its own objects —
    /// paper §III-A Phase 3).
    pub writes: Vec<(ObjectId, Bytes)>,
    /// Response returned to the client (the client keeps the one from the
    /// lowest-numbered involved partition).
    pub response: Bytes,
    /// Modeled CPU time of the request logic itself (reading/deserializing
    /// rows, business logic), charged to the replica's virtual clock.
    pub compute: Duration,
}

/// Read access to the executing replica's own store (local and replicated
/// objects), for reads whose keys are only known during execution.
///
/// The paper's a-priori read-set requirement exists so that *remote*
/// objects can be fetched consistently; objects of the executing partition
/// are always consistent during execution (the replica runs requests
/// serially in delivery order), so they may be read at any point.
pub trait LocalReader {
    /// The current value of a local or replicated object; `None` if the
    /// object does not exist or is not local to the executing partition.
    fn read(&self, oid: ObjectId) -> Option<Bytes>;
}

/// A deterministic, partitioned state machine replicated by Heron.
///
/// The paper's execution model (§III-A): the objects a request reads and
/// writes are estimated *before* execution; execution has a reading phase
/// followed by a writing phase; all involved partitions execute the
/// request, each updating only its own objects.
pub trait StateMachine: Send + Sync + 'static {
    /// Where an object lives.
    fn placement(&self, oid: ObjectId) -> Placement;

    /// How an object is stored (drives state-transfer cost). Defaults to
    /// serialized.
    fn storage_kind(&self, _oid: ObjectId) -> StorageKind {
        StorageKind::Serialized
    }

    /// The partitions a request must be multicast to. Used by clients.
    fn destinations(&self, request: &[u8]) -> Vec<PartitionId>;

    /// Which involved partition acts as the *active* partition when the
    /// deployment runs in [`crate::ExecutionMode::ActiveOnly`]. Defaults
    /// to the lowest involved partition. Workloads whose requests insert
    /// objects with dynamically-derived keys (TPC-C's order rows) must
    /// pick the partition that performs those inserts, since only the active
    /// partition executes.
    fn active_partition(&self, request: &[u8]) -> Option<PartitionId> {
        let _ = request;
        None
    }

    /// The objects the request will read (local and remote), estimated a
    /// priori as the paper assumes.
    fn read_set(&self, request: &[u8]) -> Vec<ObjectId>;

    /// The request's *conflict key-set* for parallel execution (P-SMR,
    /// Marandi et al.): two delivered commands may execute concurrently on
    /// one replica iff their key-sets are disjoint; overlapping commands
    /// apply in delivery order. Keys are opaque tokens — workloads derive
    /// them from whatever statically identifies the state a command may
    /// touch (TPC-C uses warehouse/district ids).
    ///
    /// The default declares a single universal key, serializing every
    /// command — always safe, no parallelism. An *empty* set means the
    /// command conflicts with nothing (read-only against immutable state).
    fn conflict_keys(&self, request: &[u8]) -> Vec<u64> {
        let _ = request;
        vec![0]
    }

    /// The read set as seen by one involved partition. Defaults to
    /// [`StateMachine::read_set`]; workloads that *partially execute*
    /// requests in some partitions (the paper's TPC-C does — §IV-A)
    /// override this so a partition only fetches what its share of the
    /// execution needs.
    fn read_set_at(&self, partition: PartitionId, request: &[u8]) -> Vec<ObjectId> {
        let _ = partition;
        self.read_set(request)
    }

    /// Executes the request against the values read (plus any local
    /// objects through `local`). Must be deterministic: every replica of
    /// every involved partition runs this with the same reads and must
    /// produce the same writes.
    fn execute(
        &self,
        partition: PartitionId,
        request: &[u8],
        reads: &ReadSet,
        local: &dyn LocalReader,
    ) -> Execution;

    /// The objects this partition hosts at time zero (including its copy of
    /// every [`Placement::Replicated`] object).
    fn bootstrap(&self, partition: PartitionId) -> Vec<(ObjectId, Bytes)>;

    /// Serializes this partition's full state at a checkpoint boundary
    /// into an opaque image. The engine hands the hook a
    /// [`SnapshotStore`] view of the replica's store; the default
    /// captures the raw dual-version slot image of every hosted object
    /// ([`crate::checkpoint::encode_state`]) — byte-exact, so
    /// [`StateMachine::install`] reproduces the store bit for bit.
    /// Workloads override to add their own framing or to drop derived
    /// state they can rebuild.
    fn snapshot(&self, partition: PartitionId, store: &dyn SnapshotStore) -> Vec<u8> {
        let _ = partition;
        crate::checkpoint::encode_state(store)
    }

    /// Installs an image produced by [`StateMachine::snapshot`] into a
    /// (possibly wiped) store. Must be the exact inverse: after
    /// `install(snapshot(s))` the store state is bit-identical to `s`,
    /// at any commit prefix.
    fn install(&self, partition: PartitionId, image: &[u8], store: &dyn SnapshotStore) {
        let _ = partition;
        crate::checkpoint::install_state(image, store);
    }

    /// A deterministic digest of this partition's state, for checkpoint
    /// verification: equal state ⇒ equal digest, and the round-trip
    /// property `digest(install(snapshot(s))) == digest(s)` must hold.
    /// The default hashes every hosted object's raw slot image in id
    /// order ([`crate::checkpoint::state_digest`]).
    fn digest(&self, partition: PartitionId, store: &dyn SnapshotStore) -> u64 {
        let _ = partition;
        crate::checkpoint::state_digest(store)
    }
}

/// The engine-side store view handed to the [`StateMachine::snapshot`] /
/// [`StateMachine::install`] / [`StateMachine::digest`] hooks: enumerates
/// the hosted objects and ships raw dual-version slot images byte-exactly
/// (both versions and their timestamps — what the consistency checker
/// compares across replicas, and what concurrent remote readers address).
pub trait SnapshotStore {
    /// Ids of every hosted object, sorted.
    fn object_ids(&self) -> Vec<ObjectId>;
    /// The raw dual-version slot image of `oid`; `None` if not hosted.
    fn raw_slot(&self, oid: ObjectId) -> Option<Vec<u8>>;
    /// Installs a raw slot image for `oid` byte-exactly (allocating the
    /// slot if the store was wiped).
    fn install_slot(&self, oid: ObjectId, raw: &[u8]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_set_basics() {
        let mut rs = ReadSet::new();
        assert!(rs.is_empty());
        rs.insert(ObjectId(1), Bytes::from_static(b"v"));
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(ObjectId(1)).unwrap().as_ref(), b"v");
        assert!(rs.get(ObjectId(2)).is_none());
    }
}
