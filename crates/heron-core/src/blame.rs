//! Tail-exemplar blame: decomposes the latency of individual (slow)
//! requests into wait-state segments along their span path.
//!
//! The `client.latency_ns` histogram retains the uids of its slowest
//! samples ([`crate::metrics::Histogram::exemplars`]); this module looks
//! each uid up in the trace and explains where its time went. The starting
//! point is [`crate::critical_path::critical_paths`]'s stage decomposition
//! (ordering / phase2 / execute / phase4 / reply+other); on top of it,
//! `pool.park` spans nested under the home partition's `exec.request` span
//! carve their duration *out of the stage they interrupted* into explicit
//! `park.phase2_starved` / `park.lagging` segments. The carve is
//! category-preserving — park time moves within a stage, never in or out
//! of the request — so each exemplar's segments still sum exactly to its
//! end-to-end latency, and aggregates over blamed requests still match the
//! Fig. 6 breakdown ([`crate::critical_path::attribute`]).

use crate::critical_path::{critical_paths, spans, Span};
use sim::trace::TraceEvent;
use std::collections::HashMap;

/// One wait-state segment of an exemplar's latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameSegment {
    /// Stage or wait-state label (`"phase2"`, `"park.lagging"`, …).
    pub name: String,
    /// Virtual ns attributed to it.
    pub ns: u64,
}

/// One tail exemplar, explained.
#[derive(Debug, Clone)]
pub struct BlamedExemplar {
    /// The request's multicast uid (the histogram exemplar's tag).
    pub uid: u64,
    /// The latency the histogram retained it for, ns.
    pub latency_ns: u64,
    /// Client-observed latency per the trace (the `client.request` span).
    /// Equal to `latency_ns` when the request was traced.
    pub total_ns: u64,
    /// Wait-state segments summing exactly to `total_ns`.
    pub segments: Vec<BlameSegment>,
}

/// Which stage a park span interrupted: the nearest ancestor on the way to
/// the home `exec.request` span that is itself a stage span.
fn park_stage(park: &Span, by_id: &HashMap<u64, &Span>, home: u64) -> Option<&'static str> {
    let mut stage = None;
    let mut cur = park.parent;
    let mut hops = 0;
    while cur != 0 && hops < 64 {
        let Some(s) = by_id.get(&cur) else { break };
        if stage.is_none() {
            match s.name {
                "exec.phase2" => stage = Some("phase2"),
                "exec.execute" => stage = Some("execute"),
                "exec.phase4" => stage = Some("phase4"),
                _ => {}
            }
        }
        if s.id == home {
            // Parks directly under exec.request (outside any stage span)
            // interrupted the remainder bucket.
            return Some(stage.unwrap_or("reply+other"));
        }
        cur = s.parent;
        hops += 1;
    }
    None
}

/// Explains histogram exemplars (`(latency_ns, uid)` pairs, as returned by
/// [`crate::metrics::Histogram::exemplars`]) against a trace. Exemplars
/// whose uid never shows up in the trace come back with one `untraced`
/// segment covering the whole latency, so the output always decomposes
/// every input.
pub fn blame_exemplars(events: &[TraceEvent], exemplars: &[(u64, u64)]) -> Vec<BlamedExemplar> {
    let paths = critical_paths(events);
    let by_corr: HashMap<u64, &crate::critical_path::RequestPath> =
        paths.iter().map(|p| (p.corr, p)).collect();
    let all = spans(events);
    let by_id: HashMap<u64, &Span> = all.iter().map(|s| (s.id, s)).collect();
    let parks: Vec<&Span> = all.iter().filter(|s| s.name == "pool.park").collect();

    let mut out = Vec::new();
    for &(latency_ns, uid) in exemplars {
        let Some(path) = by_corr.get(&uid) else {
            out.push(BlamedExemplar {
                uid,
                latency_ns,
                total_ns: latency_ns,
                segments: vec![BlameSegment {
                    name: "untraced".to_string(),
                    ns: latency_ns,
                }],
            });
            continue;
        };
        // Park time per (stage, park label), carved out below.
        let mut carved: HashMap<(&'static str, &'static str), u64> = HashMap::new();
        if path.home_span != 0 {
            for park in &parks {
                let Some(stage) = park_stage(park, &by_id, path.home_span) else {
                    continue;
                };
                let label = if park.arg("lagging").unwrap_or(0) != 0 {
                    "park.lagging"
                } else {
                    "park.phase2_starved"
                };
                *carved.entry((stage, label)).or_default() += park.dur_ns();
            }
        }
        let mut segments = Vec::new();
        for seg in &path.segments {
            let mut remaining = seg.ns;
            let mut parks_here: Vec<(&'static str, u64)> = carved
                .iter()
                .filter(|((stage, _), _)| *stage == seg.name)
                .map(|((_, label), ns)| (*label, *ns))
                .collect();
            parks_here.sort_unstable();
            let mut park_segs = Vec::new();
            for (label, ns) in parks_here {
                // A stage's parks nest inside it in time, so they cannot
                // exceed it; clamp anyway so the sum invariant is
                // unconditional.
                let take = ns.min(remaining);
                remaining -= take;
                if take > 0 {
                    park_segs.push(BlameSegment {
                        name: label.to_string(),
                        ns: take,
                    });
                }
            }
            if remaining > 0 || park_segs.is_empty() {
                segments.push(BlameSegment {
                    name: seg.name.to_string(),
                    ns: remaining,
                });
            }
            segments.extend(park_segs);
        }
        out.push(BlamedExemplar {
            uid,
            latency_ns,
            total_ns: path.total_ns,
            segments,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::trace::{EventKind, SpanArgs};

    fn ev(
        kind: EventKind,
        t_ns: u64,
        track: u32,
        span: u64,
        parent: u64,
        name: &'static str,
        corr: u64,
        args: &[(&'static str, u64)],
    ) -> TraceEvent {
        TraceEvent {
            t_ns,
            track,
            span,
            parent,
            kind,
            name,
            corr,
            args: SpanArgs::from_slice(args),
        }
    }

    /// One traced request (latency 100) whose phase2 contains a 6ns
    /// starvation park and whose execute contains a 4ns lagging park.
    fn parked_trace() -> Vec<TraceEvent> {
        use EventKind::{Begin, End, Instant};
        vec![
            ev(Begin, 0, 9, 1, 0, "client.request", 0, &[]),
            ev(
                Begin,
                30,
                2,
                2,
                0,
                "exec.request",
                5,
                &[("partition", 0), ("partitions", 2), ("ordering_ns", 30)],
            ),
            ev(Begin, 30, 2, 3, 2, "exec.phase2", 5, &[]),
            ev(Begin, 32, 2, 10, 3, "pool.park", 0, &[("lagging", 0)]),
            ev(End, 38, 2, 10, 3, "pool.park", 0, &[]),
            ev(End, 40, 2, 3, 2, "exec.phase2", 5, &[]),
            ev(Begin, 40, 2, 4, 2, "exec.execute", 5, &[]),
            ev(Begin, 50, 2, 11, 4, "pool.park", 0, &[("lagging", 1)]),
            ev(End, 54, 2, 11, 4, "pool.park", 0, &[]),
            ev(End, 65, 2, 4, 2, "exec.execute", 5, &[]),
            ev(Begin, 65, 2, 5, 2, "exec.phase4", 5, &[]),
            ev(End, 80, 2, 5, 2, "exec.phase4", 5, &[]),
            ev(Instant, 81, 2, 0, 2, "exec.reply", 5, &[]),
            ev(End, 82, 2, 2, 0, "exec.request", 5, &[]),
            ev(End, 100, 9, 1, 0, "client.request", 5, &[]),
        ]
    }

    #[test]
    fn parks_are_carved_out_of_their_stage() {
        let blamed = blame_exemplars(&parked_trace(), &[(100, 5)]);
        assert_eq!(blamed.len(), 1);
        let b = &blamed[0];
        assert_eq!((b.uid, b.latency_ns, b.total_ns), (5, 100, 100));
        let by_name: Vec<(&str, u64)> =
            b.segments.iter().map(|s| (s.name.as_str(), s.ns)).collect();
        assert_eq!(
            by_name,
            [
                ("ordering", 30),
                ("phase2", 4),
                ("park.phase2_starved", 6),
                ("execute", 21),
                ("park.lagging", 4),
                ("phase4", 15),
                ("reply+other", 20),
            ]
        );
    }

    #[test]
    fn segments_sum_exactly_to_latency() {
        for b in blame_exemplars(&parked_trace(), &[(100, 5)]) {
            let sum: u64 = b.segments.iter().map(|s| s.ns).sum();
            assert_eq!(sum, b.total_ns);
            assert_eq!(b.total_ns, b.latency_ns);
        }
    }

    #[test]
    fn carving_preserves_the_aggregate_breakdown() {
        // Moving park time within a stage must not change what
        // `attribute` reports per stage.
        let events = parked_trace();
        let a = crate::critical_path::attribute(&events, None);
        let b = &blame_exemplars(&events, &[(100, 5)])[0];
        let phase2: u64 = b
            .segments
            .iter()
            .filter(|s| s.name == "phase2" || s.name == "park.phase2_starved")
            .map(|s| s.ns)
            .sum();
        let execute: u64 = b
            .segments
            .iter()
            .filter(|s| s.name == "execute" || s.name == "park.lagging")
            .map(|s| s.ns)
            .sum();
        assert_eq!(phase2, 10);
        assert_eq!(execute, 25);
        assert_eq!(a.execution_ns, 25);
    }

    #[test]
    fn untraced_exemplars_fall_back_to_one_segment() {
        let blamed = blame_exemplars(&[], &[(77, 42)]);
        assert_eq!(blamed.len(), 1);
        assert_eq!(blamed[0].segments.len(), 1);
        assert_eq!(blamed[0].segments[0].name, "untraced");
        assert_eq!(blamed[0].segments[0].ns, 77);
    }
}
