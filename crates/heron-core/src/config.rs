//! Heron deployment configuration.

use amcast::McastConfig;
use sim::storage::Storage;
use std::time::Duration;

/// Durable-checkpoint configuration. Present only when the deployment has
/// a simulated persistent storage device: each replica then appends the
/// ordering layer's delivery log to a per-replica WAL, periodically
/// persists an application checkpoint stamped with the executor's commit
/// watermark and the ordering epoch, and truncates both the in-memory
/// update log and the WAL behind that horizon. A fully crashed partition
/// rebuilds from checkpoint + WAL tail instead of live peer memory.
///
/// Absent (`HeronConfig::durability == None`, the default), no storage
/// device is touched, no checkpointer process is spawned and schedules
/// are bit-identical to a build without this subsystem.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The shared storage device; each replica carves out its own
    /// namespaces (`heron-p{p}r{i}` for checkpoints, `mcast-g{g}r{i}`
    /// for the ordering WAL).
    pub storage: Storage,
    /// Period of the per-replica checkpointer process. Each round waits
    /// for a quiescent executor boundary, persists a checkpoint and
    /// truncates the logs behind it.
    pub checkpoint_interval: Duration,
}

impl DurabilityConfig {
    /// Checkpointing on `storage` every `interval`.
    pub fn new(storage: Storage, interval: Duration) -> Self {
        DurabilityConfig {
            storage,
            checkpoint_interval: interval,
        }
    }
}

/// How multi-partition requests execute (paper §III-D2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Every involved partition executes the request, each updating only
    /// its local objects — Heron's default design.
    #[default]
    AllInvolved,
    /// Only the *active* partition (the lowest involved id) executes; it
    /// updates its own objects locally and writes the passive partitions'
    /// objects remotely (whole dual-version slots, so racing active
    /// replicas write identical images). Saves the passive partitions'
    /// compute at the cost of extra fabric writes — the alternative the
    /// paper sketches and leaves as future work.
    ///
    /// Requirement: every object a partition may be *written* remotely
    /// must appear in that partition's `read_set_at` (true for TPC-C:
    /// suppliers' stock rows, the payee's customer row), so that passive
    /// replicas can maintain their update logs for state transfer.
    ActiveOnly,
}

/// Configuration of a Heron deployment.
#[derive(Debug, Clone)]
pub struct HeronConfig {
    /// Number of partitions (shards).
    pub partitions: usize,
    /// Replicas per partition, `n = 2f + 1`.
    pub replicas_per_partition: usize,
    /// Maximum number of clients.
    pub max_clients: usize,
    /// Maximum request payload (application bytes, before the envelope).
    pub max_request: usize,
    /// Maximum response payload.
    pub max_response: usize,
    /// Extra delay δ a replica tentatively waits for *all* replicas after
    /// reaching a majority in Phase 4 (paper §V-E1, Table I). `None`
    /// disables the heuristic.
    pub wait_for_all: Option<Duration>,
    /// Client retry period: a request unanswered for this long is
    /// re-multicast with the same id.
    pub client_retry: Duration,
    /// State-transfer chunk size (paper: 32 KiB payloads perform best).
    pub transfer_chunk: usize,
    /// Staging-ring slots on each replica for inbound state transfer.
    pub transfer_slots: usize,
    /// Serialization cost per byte when state transfer ships a
    /// [`crate::StorageKind::Native`] object (sender side).
    pub ser_ns_per_kib: u64,
    /// Deserialization cost per byte on the receiving lagger.
    pub deser_ns_per_kib: u64,
    /// A replica that asked for state transfer re-issues the request if not
    /// served within this timeout (Algorithm 3's `timeout`).
    pub transfer_timeout: Duration,
    /// Multi-partition execution strategy (paper §III-D2).
    pub execution_mode: ExecutionMode,
    /// Executor pool width per replica (P-SMR). `1` (the default) runs the
    /// serial executor and is schedule-hash bit-identical to the
    /// pre-pool system; widths above 1 spawn that many virtual-time
    /// worker processes fed by a dependency-aware dispatcher that chains
    /// commands with overlapping [`crate::StateMachine::conflict_keys`]
    /// in delivery order and runs independent commands concurrently.
    pub executor_width: usize,
    /// Enables the Sim-TSan happens-before race detector on the fabric:
    /// shadow memory behind every verb, region annotations for all of
    /// Heron's coordination memory, and the protocol lints. Off by
    /// default; when off the only cost on the verb hot path is one
    /// relaxed atomic load, and schedules are bit-identical either way.
    pub race_detector: bool,
    /// Enables virtual-time tracing: causal spans across the client, the
    /// ordering layer, the RDMA verbs and the executor phases, exportable
    /// as Perfetto JSON (see `sim::trace`). Off by default; when off every
    /// trace hook is one relaxed atomic load and — like the race detector —
    /// schedules are bit-identical either way.
    pub tracing: bool,
    /// **Self-test only.** Makes [`crate::VersionedStore::set`] overwrite
    /// the version with the *larger* timestamp — removing the
    /// dual-versioning guard that lets concurrent remote readers find the
    /// version they need. Exists so `race_audit --selftest` can prove the
    /// race detector catches the resulting protocol violation; never set
    /// this outside that test.
    pub break_dual_version_guard: bool,
    /// Durable checkpointing (see [`DurabilityConfig`]). `None` (the
    /// default) runs the original all-in-memory system bit-for-bit.
    pub durability: Option<DurabilityConfig>,
    /// Ordering-layer configuration.
    pub mcast: McastConfig,
}

impl HeronConfig {
    /// A deployment of `partitions` × `replicas_per_partition` with
    /// defaults calibrated to the paper's testbed.
    pub fn new(partitions: usize, replicas_per_partition: usize) -> Self {
        let mcast = McastConfig::new(partitions, replicas_per_partition);
        HeronConfig {
            partitions,
            replicas_per_partition,
            max_clients: 64,
            max_request: 384,
            max_response: 256,
            wait_for_all: Some(Duration::from_micros(20)),
            client_retry: Duration::from_millis(20),
            transfer_chunk: 32 * 1024,
            transfer_slots: 8,
            // ≈2.24 ns/byte each way: with serialize/wire/deserialize
            // pipelined across responder and requester, this reproduces
            // the paper's ≈450 MB/s native-table transfer rate (§V-E2).
            ser_ns_per_kib: 2_290,
            deser_ns_per_kib: 2_290,
            transfer_timeout: Duration::from_millis(5),
            execution_mode: ExecutionMode::default(),
            executor_width: 1,
            race_detector: false,
            tracing: false,
            break_dual_version_guard: false,
            durability: None,
            mcast,
        }
    }

    /// Enables durable checkpointing (see [`DurabilityConfig`]).
    #[must_use]
    pub fn with_durability(mut self, storage: Storage, interval: Duration) -> Self {
        self.durability = Some(DurabilityConfig::new(storage, interval));
        self
    }

    /// Enables (or disables) the Sim-TSan race detector.
    #[must_use]
    pub fn with_race_detector(mut self, on: bool) -> Self {
        self.race_detector = on;
        self
    }

    /// Enables (or disables) virtual-time tracing (see
    /// [`HeronConfig::tracing`]).
    #[must_use]
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// **Self-test only**: disables the dual-versioning victim guard (see
    /// [`HeronConfig::break_dual_version_guard`]).
    #[must_use]
    pub fn with_broken_dual_version_guard(mut self) -> Self {
        self.break_dual_version_guard = true;
        self
    }

    /// **Self-test only**: drops the `await_epoch` gate on the ordering
    /// layer's `has_work` truncation-horizon check, re-introducing the
    /// PR 8 zero-virtual-time livelock so `explore_suite --selftest` can
    /// prove the livelock detector catches it.
    #[must_use]
    pub fn with_broken_has_work_gate(mut self) -> Self {
        self.mcast.break_has_work_gate = true;
        self
    }

    /// Sets the multi-partition execution mode.
    #[must_use]
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.execution_mode = mode;
        self
    }

    /// Sets the executor pool width per replica (see
    /// [`HeronConfig::executor_width`]).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn with_executor_width(mut self, width: usize) -> Self {
        assert!(width >= 1, "executor_width must be at least 1");
        self.executor_width = width;
        self
    }

    /// Sets the maximum number of clients (and sizes the ordering layer's
    /// submission rings to match).
    #[must_use]
    pub fn with_max_clients(mut self, n: usize) -> Self {
        self.max_clients = n;
        self.mcast.max_clients = n;
        self
    }

    /// Sets the maximum request payload size.
    #[must_use]
    pub fn with_max_request(mut self, bytes: usize) -> Self {
        self.max_request = bytes;
        // Envelope: client id + seq + submit time.
        self.mcast.max_payload = bytes + 3 * 8;
        self
    }

    /// Sets the wait-for-all delay δ (or disables it with `None`).
    #[must_use]
    pub fn with_wait_for_all(mut self, delta: Option<Duration>) -> Self {
        self.wait_for_all = delta;
        self
    }

    /// Sets the end-to-end batching cap: the ordering layer's group-commit
    /// window and, when above 1, doorbell-coalesced Phase 2/4 coordination
    /// flushes in the execution layer. `1` (the default) disables batching
    /// everywhere and reproduces the unbatched system bit-for-bit.
    #[must_use]
    pub fn with_max_batch(mut self, n: usize) -> Self {
        assert!(n >= 1, "max_batch must be at least 1");
        self.mcast.max_batch = n;
        self
    }

    /// The end-to-end batching cap (see [`Self::with_max_batch`]).
    pub fn max_batch(&self) -> usize {
        self.mcast.max_batch
    }

    /// Majority size per partition.
    pub fn majority(&self) -> usize {
        self.replicas_per_partition / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let cfg = HeronConfig::new(4, 3);
        assert_eq!(cfg.mcast.groups, 4);
        assert_eq!(cfg.mcast.replicas_per_group, 3);
        assert_eq!(cfg.majority(), 2);
    }

    #[test]
    fn with_max_clients_propagates_to_mcast() {
        let cfg = HeronConfig::new(1, 3).with_max_clients(100);
        assert_eq!(cfg.max_clients, 100);
        assert_eq!(cfg.mcast.max_clients, 100);
    }

    #[test]
    fn with_max_batch_propagates_to_mcast() {
        let cfg = HeronConfig::new(2, 3).with_max_batch(16);
        assert_eq!(cfg.max_batch(), 16);
        assert_eq!(cfg.mcast.max_batch, 16);
        assert_eq!(
            HeronConfig::new(2, 3).max_batch(),
            1,
            "batching off by default"
        );
    }

    #[test]
    fn with_max_request_sizes_envelope() {
        let cfg = HeronConfig::new(1, 3).with_max_request(500);
        assert_eq!(cfg.max_request, 500);
        assert_eq!(cfg.mcast.max_payload, 524);
    }
}
