#!/usr/bin/env python3
"""Bench trend gate: diff fresh bench_results/BENCH_*.json against the
committed baseline and fail on a >20% geomean regression.

For each tracked figure the script extracts its throughput-style metrics
(higher is better) or latency-style metrics (lower is better), forms the
per-metric improvement ratio current/baseline (inverted for latency), and
takes the geometric mean per figure. A figure whose geomean falls below
1 - threshold fails the gate.

Comparisons are skipped (with a note, not a failure) when a side is
missing, the baseline commit predates the figure, the quick-mode flags
differ (quick and full runs are not comparable), or the metric shapes
diverge — the gate only judges apples-to-apples pairs.

Usage:
    python3 scripts/bench_trend.py [--dir bench_results] [--ref HEAD]
                                   [--threshold 0.20]
"""

import argparse
import json
import math
import os
import subprocess
import sys


def metrics_psmr(doc):
    """P-SMR sweep: every per-width throughput, higher is better."""
    vals = []
    for sweep in doc.get("sweeps", []):
        vals.extend(sweep.get("tps", []))
    return [("tps", v, True) for v in vals]


def metrics_recovery(doc):
    """Recovery ladder: per-tail recovery time, lower is better."""
    return [
        ("recovery_ns[tail=%s]" % row.get("tail_requests"), row["recovery_ns"], False)
        for row in doc.get("rows", [])
        if row.get("recovery_ns")
    ]


def metrics_scheduler(doc):
    """Scheduler bench: after-engine event rates, higher is better."""
    return [
        (w.get("name", "?"), w["after_events_per_sec"], True)
        for w in doc.get("workloads", [])
        if w.get("after_events_per_sec")
    ]


FIGURES = {
    "BENCH_psmr.json": metrics_psmr,
    "BENCH_recovery.json": metrics_recovery,
    "BENCH_scheduler.json": metrics_scheduler,
}


def load_current(path):
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def load_baseline(ref, repo_path):
    try:
        blob = subprocess.run(
            ["git", "show", "%s:%s" % (ref, repo_path)],
            capture_output=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    try:
        return json.loads(blob)
    except ValueError:
        return None


def compare(name, cur, base, extract):
    """Returns (verdict, detail, geomean-or-None); verdict in
    {"ok", "regressed", "skipped"}."""
    if cur is None:
        return "skipped", "no fresh results", None
    if base is None:
        return "skipped", "no committed baseline", None
    if cur.get("quick") != base.get("quick"):
        return (
            "skipped",
            "quick-mode mismatch (current quick=%s, baseline quick=%s)"
            % (cur.get("quick"), base.get("quick")),
            None,
        )
    cur_m, base_m = extract(cur), extract(base)
    if not cur_m or not base_m:
        return "skipped", "no comparable metrics", None
    if [m[0] for m in cur_m] != [m[0] for m in base_m]:
        return "skipped", "metric shapes diverged", None
    ratios = []
    for (label, cv, higher), (_, bv, _) in zip(cur_m, base_m):
        if cv <= 0 or bv <= 0:
            continue
        ratios.append(cv / bv if higher else bv / cv)
    if not ratios:
        return "skipped", "no positive metric pairs", None
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    detail = "geomean ratio %.4f over %d metrics" % (geomean, len(ratios))
    return "ok", detail, geomean


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--dir", default="bench_results", help="results directory")
    ap.add_argument("--ref", default="HEAD", help="git ref holding the baseline")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max tolerated geomean regression (0.20 = 20%%)",
    )
    args = ap.parse_args()

    floor = 1.0 - args.threshold
    failed = False
    print("bench trend vs %s (fail below geomean %.2f):" % (args.ref, floor))
    for name, extract in sorted(FIGURES.items()):
        repo_path = "%s/%s" % (args.dir, name)
        verdict, detail, geomean = compare(
            name, load_current(repo_path), load_baseline(args.ref, repo_path), extract
        )
        if verdict == "ok" and geomean < floor:
            verdict = "regressed"
            failed = True
        print("  %-22s %-9s %s" % (name, verdict.upper(), detail))
    if failed:
        print("bench trend: FAIL — geomean regression beyond %.0f%%" % (args.threshold * 100))
        return 1
    print("bench trend: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
