#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite, fully offline.
# Every dependency is a vendored shim under shims/ (see README), so this
# must pass with no network access from a fresh checkout.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
