#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite, fully offline.
# Every dependency is a vendored shim under shims/ (see README), so this
# must pass with no network access from a fresh checkout.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Lint gate: formatting and clippy, warnings denied. Every crate root also
# carries #![forbid(unsafe_code)], so unsafe cannot creep in silently.
cargo fmt --check
cargo clippy --all-targets --offline -- -D warnings

# Chaos gate: seeded fault plans through the SMR consistency checker
# (DESIGN.md §9). Fixed seed window so failures replay exactly; on a
# non-linearizable history or a stall the suite exits non-zero and prints
# the failing seed plus its shrunken minimal reproduction.
if ! cargo run -q --release --offline -p heron-bench --bin chaos_suite -- \
    --quick --seed 9000 --schedules 8; then
  echo "tier1: chaos suite FAILED — replay with:" >&2
  echo "  cargo run --release -p heron-bench --bin chaos_suite -- --quick --seed <failing seed> --schedules 1" >&2
  exit 1
fi

# Checker self-test: corrupt one applied command and require the checker to
# report the violation (proves the gate can actually fail).
cargo run -q --release --offline -p heron-bench --bin chaos_suite -- \
    --quick --selftest

# Race gate: Sim-TSan happens-before audit over the fig4/fig5/chaos
# schedule shapes at fixed seeds (DESIGN.md §10). Any race or protocol
# lint — or a detector-induced schedule perturbation — exits non-zero
# with the full report.
if ! cargo run -q --release --offline -p heron-bench --bin race_audit -- \
    --quick --seed 42; then
  echo "tier1: race audit FAILED — replay with:" >&2
  echo "  cargo run --release -p heron-bench --bin race_audit -- --quick --seed 42" >&2
  exit 1
fi

# Detector self-test: disable the dual-versioning victim guard and require
# the race detector to catch the resulting protocol violation.
cargo run -q --release --offline -p heron-bench --bin race_audit -- \
    --quick --selftest

# Trace gate: virtual-time tracing explainer (DESIGN.md §11). Exports the
# Perfetto trace, checks the critical-path analyzer's Fig. 6 attribution
# against the legacy breakdown counters (≤ 1 % divergence), and verifies
# the tracing on/off schedules are bit-identical.
if ! cargo run -q --release --offline -p heron-bench --bin trace_explain -- \
    --quick --seed 42; then
  echo "tier1: trace explain FAILED — replay with:" >&2
  echo "  cargo run --release -p heron-bench --bin trace_explain -- --quick --seed 42" >&2
  exit 1
fi

# Perf gate: a short fixed-work scheduler run (DESIGN.md §12). Fails if the
# fast engine's measured speedup over the reference engine (heap queue,
# host-mediated wakeups) drops below the floor committed in
# bench_results/BENCH_scheduler.json — i.e. a >20 % events/sec regression
# against the recorded baseline. Gating on the speedup ratio, not absolute
# events/sec, keeps the gate stable across machines. Every gate run also
# re-proves the engines execute bit-identical schedules.
if ! cargo run -q --release --offline -p heron-bench --bin sched_bench -- \
    --gate --quick; then
  echo "tier1: scheduler perf gate FAILED — remeasure with:" >&2
  echo "  cargo run --release -p heron-bench --bin sched_bench -- --quick" >&2
  exit 1
fi

# P-SMR gate: executor-pool scaling (DESIGN.md §13). Sweeps width ∈
# {1,2,4,8} × conflict level on TPC-C fixed work; fails if the width-8
# speedups drop below the quick-mode floors, if any cell stalls, or if
# the width=1 identity / pool correctness tests regressed (those run in
# `cargo test` above via schedule_hash.rs / psmr_order.rs / chaos.rs).
if ! cargo run -q --release --offline -p heron-bench --bin psmr_scaling -- \
    --gate --quick; then
  echo "tier1: P-SMR scaling gate FAILED — remeasure with:" >&2
  echo "  cargo run --release -p heron-bench --bin psmr_scaling -- --quick" >&2
  exit 1
fi

# Exploration gate: Sim-Check schedule exploration (DESIGN.md §15). Pins
# the exploration-off schedule hash against a Baseline-explored run on
# both engines (fig4 + chaos + recovery shapes) and runs a fixed-seed
# random/PCT budget that must stay free of deadlock/livelock findings.
if ! cargo run -q --release --offline -p heron-bench --bin explore_suite -- \
    --gate --quick --seed 42; then
  echo "tier1: exploration gate FAILED — replay with:" >&2
  echo "  cargo run --release -p heron-bench --bin explore_suite -- --gate --quick --seed 42" >&2
  exit 1
fi

# Detector self-test: inject a deadlock, a livelock, and the re-broken
# PR 8 has_work gate; require each to be caught and shrunk to a minimal
# replayable trace (proves the exploration gate can actually fail).
cargo run -q --release --offline -p heron-bench --bin explore_suite -- \
    --quick --selftest

# Profiling gate: Sim-Prof wait-state profiler (DESIGN.md §16). Pins the
# profiler-off schedule hash against a profiler-on run on both engines
# (fig4 + chaos + psmr-w4 shapes), requires every p999 exemplar's
# wait-state decomposition to sum exactly to its end-to-end latency and
# the blamed aggregate to match the legacy Fig. 6 breakdown within 1 %,
# and bounds the profiling wall overhead at 5 %.
if ! cargo run -q --release --offline -p heron-bench --bin prof_explain -- \
    --gate --quick --seed 42; then
  echo "tier1: profiling gate FAILED — replay with:" >&2
  echo "  cargo run --release -p heron-bench --bin prof_explain -- --gate --quick --seed 42" >&2
  exit 1
fi

# Bench trend gate: fresh BENCH_*.json vs the committed baselines; a >20 %
# geomean regression on the psmr / recovery / scheduler figures fails.
# (Skips figure pairs that are not apples-to-apples, e.g. quick vs full.)
python3 scripts/bench_trend.py

# Recovery gate: durable checkpoints + cold restart (DESIGN.md §14). Runs
# the fixed-seed durable-recovery chaos scenarios through the checker,
# requires cold-restart cost to scale with the WAL tail (checkpoint +
# tail replay, never full history), and pins the durability-off schedule
# hash against bench_results/BENCH_recovery.json — with checkpointing
# disabled the durability subsystem must be schedule-invisible.
if ! cargo run -q --release --offline -p heron-bench --bin recovery_bench -- \
    --gate --quick; then
  echo "tier1: recovery gate FAILED — remeasure with:" >&2
  echo "  cargo run --release -p heron-bench --bin recovery_bench -- --quick" >&2
  exit 1
fi
