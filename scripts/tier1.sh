#!/usr/bin/env bash
# Tier-1 verification: release build + full test suite, fully offline.
# Every dependency is a vendored shim under shims/ (see README), so this
# must pass with no network access from a fresh checkout.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Chaos gate: seeded fault plans through the SMR consistency checker
# (DESIGN.md §9). Fixed seed window so failures replay exactly; on a
# non-linearizable history or a stall the suite exits non-zero and prints
# the failing seed plus its shrunken minimal reproduction.
if ! cargo run -q --release --offline -p heron-bench --bin chaos_suite -- \
    --quick --seed 9000 --schedules 8; then
  echo "tier1: chaos suite FAILED — replay with:" >&2
  echo "  cargo run --release -p heron-bench --bin chaos_suite -- --quick --seed <failing seed> --schedules 1" >&2
  exit 1
fi

# Checker self-test: corrupt one applied command and require the checker to
# report the violation (proves the gate can actually fail).
cargo run -q --release --offline -p heron-bench --bin chaos_suite -- \
    --quick --selftest
