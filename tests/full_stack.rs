//! Workspace-level integration tests: the full stack (simulator → RDMA
//! fabric → atomic multicast → Heron → TPC-C) under load, failures, and
//! failover.

use heron::core::{HeronCluster, HeronConfig, PartitionId};
use heron::rdma::{Fabric, LatencyModel};
use heron::tpcc::{ids, TpccApp, TpccScale};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn build(
    seed: u64,
    warehouses: u16,
    replicas: usize,
) -> (sim::Simulation, HeronCluster, Arc<TpccApp>) {
    let simulation = sim::Simulation::new(seed);
    let fabric = Fabric::new(LatencyModel::connectx4());
    let app = Arc::new(TpccApp::new(TpccScale::small(), warehouses));
    let cluster = HeronCluster::build(
        &fabric,
        HeronConfig::new(warehouses as usize, replicas),
        app.clone(),
    );
    cluster.spawn(&simulation);
    (simulation, cluster, app)
}

/// Asserts every replica of every partition holds identical district and
/// stock state.
fn assert_converged(cluster: &HeronCluster, warehouses: u16, replicas: usize) {
    let scale = TpccScale::small();
    for w in 1..=warehouses {
        let p = PartitionId(w - 1);
        for d in 1..=scale.districts {
            let expect = cluster.peek(p, 0, ids::district(w, d)).unwrap();
            for r in 1..replicas {
                assert_eq!(
                    cluster.peek(p, r, ids::district(w, d)).unwrap(),
                    expect,
                    "district w{w}d{d} diverged at replica {r}"
                );
            }
        }
        for i in 1..=scale.items {
            let expect = cluster.peek(p, 0, ids::stock(w, i)).unwrap();
            for r in 1..replicas {
                assert_eq!(
                    cluster.peek(p, r, ids::stock(w, i)).unwrap(),
                    expect,
                    "stock w{w}i{i} diverged at replica {r}"
                );
            }
        }
    }
}

#[test]
fn tpcc_under_multi_client_load_converges() {
    let (simulation, cluster, app) = build(61, 4, 3);
    let done = Arc::new(AtomicU64::new(0));
    for c in 0..6u64 {
        let mut client = cluster.client(format!("c{c}"));
        let app = app.clone();
        let done = done.clone();
        simulation.spawn(format!("client{c}"), move || {
            let mut gen = app.generator(c + 10);
            for i in 0..60u64 {
                let home = ((c + i) % 4 + 1) as u16;
                client.execute(&gen.next(home).encode());
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    let c2 = cluster.clone();
    simulation.spawn("checker", move || {
        while done.load(Ordering::SeqCst) < 6 {
            sim::sleep(Duration::from_millis(1));
        }
        sim::sleep(Duration::from_millis(5));
        assert_converged(&c2, 4, 3);
        sim::stop();
    });
    simulation.run().unwrap();
    assert_eq!(cluster.metrics().completed.load(Ordering::Relaxed), 360);
}

#[test]
fn ordering_leader_failover_keeps_the_service_available() {
    // Replica 0 of partition 0 hosts its group's multicast *leader*.
    // Crashing that node forces an epoch change in the ordering layer and
    // client retries; Heron must keep executing correctly on the surviving
    // majority.
    let (simulation, cluster, app) = build(62, 2, 3);
    let c2 = cluster.clone();
    let mut client = cluster.client("c");
    simulation.spawn("client", move || {
        let mut gen = app.generator(5);
        for i in 0..20u64 {
            client.execute(&gen.next((i % 2 + 1) as u16).encode());
        }
        c2.crash_replica(PartitionId(0), 0); // kill the group-0 leader
        for i in 0..40u64 {
            client.execute(&gen.next((i % 2 + 1) as u16).encode());
        }
        sim::sleep(Duration::from_millis(10));
        // The surviving replicas of partition 0 agree with each other and
        // with partition 1's replicas on their own state.
        let scale = TpccScale::small();
        for d in 1..=scale.districts {
            assert_eq!(
                c2.peek(PartitionId(0), 1, ids::district(1, d)).unwrap(),
                c2.peek(PartitionId(0), 2, ids::district(1, d)).unwrap(),
                "survivors of p0 diverged on district {d}"
            );
        }
        sim::stop();
    });
    simulation.run().unwrap();
    assert_eq!(cluster.metrics().completed.load(Ordering::Relaxed), 60);
}

#[test]
fn concurrent_crashes_in_different_partitions_recover() {
    let (simulation, cluster, app) = build(63, 2, 3);
    let c2 = cluster.clone();
    let metrics = cluster.metrics();
    let mut client = cluster.client("c");
    simulation.spawn("client", move || {
        let mut gen = app.generator(8);
        for i in 0..10u64 {
            client.execute(&gen.next((i % 2 + 1) as u16).encode());
        }
        // One follower down in each partition simultaneously.
        c2.crash_replica(PartitionId(0), 2);
        c2.crash_replica(PartitionId(1), 1);
        for i in 0..60u64 {
            client.execute(&gen.next((i % 2 + 1) as u16).encode());
        }
        c2.recover_replica(PartitionId(0), 2);
        c2.recover_replica(PartitionId(1), 1);
        for i in 0..60u64 {
            if std::env::var("HERON_DBG").is_ok() {
                eprintln!("[{}] post-recovery {i}", sim::now());
            }
            client.execute(&gen.next((i % 2 + 1) as u16).encode());
        }
        sim::sleep(Duration::from_millis(100));
        assert_converged(&c2, 2, 3);
        sim::stop();
    });
    simulation.run().unwrap();
    assert_eq!(metrics.completed.load(Ordering::Relaxed), 130);
}

#[test]
fn full_stack_is_deterministic() {
    fn run(seed: u64) -> Vec<u8> {
        let (simulation, cluster, app) = build(seed, 2, 3);
        let mut client = cluster.client("c");
        let out = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o = out.clone();
        simulation.spawn("client", move || {
            let mut gen = app.generator(4);
            for i in 0..40u64 {
                let r = client.execute(&gen.next((i % 2 + 1) as u16).encode());
                o.lock().extend_from_slice(&r);
            }
            sim::stop();
        });
        simulation.run().unwrap();
        let v = out.lock().clone();
        v
    }
    // Same seed ⇒ byte-identical responses. (Different seeds produce the
    // same *application* responses too — the workload generator is seeded
    // independently — so only the positive property is asserted.)
    assert_eq!(run(99), run(99));
}
