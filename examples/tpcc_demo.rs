//! TPC-C on Heron: the paper's evaluation workload, live.
//!
//! Runs the standard transaction mix (NewOrder 45 %, Payment 43 %,
//! Delivery/OrderStatus/StockLevel 4 % each) against a 4-warehouse
//! deployment with several closed-loop clients, then prints the kind of
//! numbers the paper reports: throughput, mean/percentile latency, and the
//! ordering/coordination/execution breakdown for single- and
//! multi-partition requests.
//!
//! Run with: `cargo run --release --example tpcc_demo`

use heron::core::{HeronCluster, HeronConfig};
use heron::rdma::{Fabric, LatencyModel};
use heron::tpcc::{TpccApp, TpccScale};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const WAREHOUSES: u16 = 4;
const CLIENTS: usize = 8;
const MEASURE_MS: u64 = 50;

fn main() {
    let simulation = sim::Simulation::new(1);
    let fabric = Fabric::new(LatencyModel::connectx4());
    let app = Arc::new(TpccApp::new(TpccScale::bench(), WAREHOUSES));
    let cluster = HeronCluster::build(
        &fabric,
        HeronConfig::new(WAREHOUSES as usize, 3).with_max_clients(CLIENTS + 2),
        app.clone(),
    );
    cluster.spawn(&simulation);

    println!(
        "TPC-C: {WAREHOUSES} warehouses × 3 replicas, {CLIENTS} closed-loop clients, \
         {} items / {} customers per district",
        app.scale().items,
        app.scale().customers
    );

    for c in 0..CLIENTS {
        let mut client = cluster.client(format!("c{c}"));
        let app = app.clone();
        simulation.spawn(format!("client-{c}"), move || {
            let mut gen = app.generator(c as u64 + 1);
            let home = (c as u16 % WAREHOUSES) + 1;
            loop {
                client.execute(&gen.next(home).encode());
            }
        });
    }

    let metrics = cluster.metrics();
    simulation.spawn("reporter", move || {
        // Warm-up, then measure a fixed virtual window.
        sim::sleep(Duration::from_millis(5));
        let start = metrics.completed.load(Ordering::Relaxed);
        sim::sleep(Duration::from_millis(MEASURE_MS));
        let finished = metrics.completed.load(Ordering::Relaxed) - start;
        let tps = finished as f64 / (MEASURE_MS as f64 / 1e3);

        println!("\n== results over {MEASURE_MS} ms of virtual time ==");
        println!("throughput : {tps:>10.0} txn/s");
        println!("mean       : {:>10.2?}", metrics.mean_latency());
        println!("median     : {:>10.2?}", metrics.latency_quantile(0.5));
        println!("p95        : {:>10.2?}", metrics.latency_quantile(0.95));
        println!("p99        : {:>10.2?}", metrics.latency_quantile(0.99));

        for (label, parts) in [("single-partition", Some(1u16)), ("multi-partition", None)] {
            let (o, c, e) = metrics.mean_breakdown(parts);
            if parts.is_none() {
                // Filter to >1 partitions: recompute from samples.
                let b = metrics.breakdowns.lock();
                let multi: Vec<_> = b.iter().filter(|s| s.partitions > 1).collect();
                if multi.is_empty() {
                    continue;
                }
                let n = multi.len() as u64;
                let (o, c, e) = multi.iter().fold((0, 0, 0), |acc, s| {
                    (
                        acc.0 + s.ordering_ns,
                        acc.1 + s.coordination_ns,
                        acc.2 + s.execution_ns,
                    )
                });
                println!(
                    "{label:17}: ordering {:?}  coordination {:?}  execution {:?}",
                    Duration::from_nanos(o / n),
                    Duration::from_nanos(c / n),
                    Duration::from_nanos(e / n),
                );
            } else {
                println!("{label:17}: ordering {o:?}  coordination {c:?}  execution {e:?}");
            }
        }
        sim::stop();
    });
    simulation.run().expect("simulation completes");
}
