//! A replicated bank on four Heron partitions: concurrent cross-partition
//! transfers with a global conservation-of-money invariant.
//!
//! This is the canonical linearizability stress: several closed-loop
//! clients issue transfers between accounts that live in different
//! partitions (multi-partition requests with remote reads and local
//! writes), while an auditor repeatedly issues a single *all-partition*
//! read-only request that sums every balance. Heron's Phase 2/4
//! coordination makes that audit an atomic cut of the whole bank: it must
//! always observe the initial total, even mid-transfer.
//!
//! Run with: `cargo run --release --example bank`

use bytes::Bytes;
use heron::core::{
    Execution, HeronCluster, HeronConfig, LocalReader, ObjectId, PartitionId, Placement, ReadSet,
    StateMachine,
};
use heron::rdma::{Fabric, LatencyModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PARTITIONS: u16 = 4;
const ACCOUNTS: u64 = 32;
const INITIAL: u64 = 1_000;
const CLIENTS: u64 = 6;
const TRANSFERS_PER_CLIENT: u64 = 50;

struct Bank;

const OP_TRANSFER: u8 = 1;
const OP_BALANCE: u8 = 2;
const OP_AUDIT: u8 = 3;

fn partition_of(acct: u64) -> PartitionId {
    PartitionId((acct % PARTITIONS as u64) as u16)
}

fn arg(req: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(req[1 + i * 8..9 + i * 8].try_into().expect("argument"))
}

fn enc_transfer(from: u64, to: u64, amount: u64) -> Vec<u8> {
    let mut v = vec![OP_TRANSFER];
    for x in [from, to, amount] {
        v.extend_from_slice(&x.to_le_bytes());
    }
    v
}

fn enc_balance(acct: u64) -> Vec<u8> {
    let mut v = vec![OP_BALANCE];
    v.extend_from_slice(&acct.to_le_bytes());
    v
}

fn enc_audit() -> Vec<u8> {
    vec![OP_AUDIT]
}

impl StateMachine for Bank {
    fn placement(&self, oid: ObjectId) -> Placement {
        Placement::Partition(partition_of(oid.0))
    }

    fn destinations(&self, req: &[u8]) -> Vec<PartitionId> {
        let mut d = match req[0] {
            OP_TRANSFER => vec![partition_of(arg(req, 0)), partition_of(arg(req, 1))],
            // The audit is one linearizable request across all partitions:
            // Phase 2/4 coordination guarantees it observes a consistent
            // cut of the whole bank.
            OP_AUDIT => (0..PARTITIONS).map(PartitionId).collect(),
            _ => vec![partition_of(arg(req, 0))],
        };
        d.sort_unstable();
        d.dedup();
        d
    }

    fn read_set(&self, req: &[u8]) -> Vec<ObjectId> {
        match req[0] {
            OP_TRANSFER => vec![ObjectId(arg(req, 0)), ObjectId(arg(req, 1))],
            OP_AUDIT => (0..ACCOUNTS).map(ObjectId).collect(),
            _ => vec![ObjectId(arg(req, 0))],
        }
    }

    fn execute(
        &self,
        partition: PartitionId,
        req: &[u8],
        reads: &ReadSet,
        _local: &dyn LocalReader,
    ) -> Execution {
        let bal = |acct: u64| {
            u64::from_le_bytes(
                reads.get(ObjectId(acct)).expect("account read")[..8]
                    .try_into()
                    .expect("8 bytes"),
            )
        };
        match req[0] {
            OP_TRANSFER => {
                let (from, to, amount) = (arg(req, 0), arg(req, 1), arg(req, 2));
                let ok = bal(from) >= amount;
                let mut writes = Vec::new();
                if ok {
                    if partition_of(from) == partition {
                        writes.push((
                            ObjectId(from),
                            Bytes::copy_from_slice(&(bal(from) - amount).to_le_bytes()),
                        ));
                    }
                    if partition_of(to) == partition {
                        writes.push((
                            ObjectId(to),
                            Bytes::copy_from_slice(&(bal(to) + amount).to_le_bytes()),
                        ));
                    }
                }
                Execution {
                    writes,
                    response: Bytes::copy_from_slice(&[ok as u8]),
                    compute: Duration::from_micros(2),
                }
            }
            OP_AUDIT => {
                let total: u64 = (0..ACCOUNTS).map(bal).sum();
                Execution {
                    writes: vec![],
                    response: Bytes::copy_from_slice(&total.to_le_bytes()),
                    compute: Duration::from_micros(3),
                }
            }
            _ => Execution {
                writes: vec![],
                response: Bytes::copy_from_slice(&bal(arg(req, 0)).to_le_bytes()),
                compute: Duration::from_micros(1),
            },
        }
    }

    fn bootstrap(&self, partition: PartitionId) -> Vec<(ObjectId, Bytes)> {
        (0..ACCOUNTS)
            .filter(|a| partition_of(*a) == partition)
            .map(|a| (ObjectId(a), Bytes::copy_from_slice(&INITIAL.to_le_bytes())))
            .collect()
    }
}

fn main() {
    let simulation = sim::Simulation::new(7);
    let fabric = Fabric::new(LatencyModel::connectx4());
    let cluster = HeronCluster::build(
        &fabric,
        HeronConfig::new(PARTITIONS as usize, 3),
        Arc::new(Bank),
    );
    cluster.spawn(&simulation);

    let done = Arc::new(AtomicU64::new(0));
    for c in 0..CLIENTS {
        let mut client = cluster.client(format!("teller-{c}"));
        let done = done.clone();
        simulation.spawn(format!("teller-{c}"), move || {
            for i in 0..TRANSFERS_PER_CLIENT {
                let from = (c * 7 + i) % ACCOUNTS;
                let to = (c * 11 + i * 3 + 1) % ACCOUNTS;
                if from != to {
                    client.execute(&enc_transfer(from, to, 1 + i % 50));
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    let mut auditor = cluster.client("auditor");
    let metrics = cluster.metrics();
    simulation.spawn("auditor", move || {
        let mut audits = 0u32;
        loop {
            sim::sleep(Duration::from_millis(1));
            // One linearizable multi-partition request sums every account
            // atomically, even while transfers are in flight.
            let total = u64::from_le_bytes(
                auditor.execute(&enc_audit())[..8]
                    .try_into()
                    .expect("8 bytes"),
            );
            audits += 1;
            println!(
                "[{}] audit #{audits}: total = {total} (expected {})",
                sim::now(),
                ACCOUNTS * INITIAL
            );
            assert_eq!(total, ACCOUNTS * INITIAL, "money must be conserved");
            if done.load(Ordering::SeqCst) == CLIENTS {
                break;
            }
        }
        // Spot-check one account read too.
        let _ = auditor.execute(&enc_balance(0));
        println!(
            "\n{} transfers + audits completed; mean latency {:?}, p99 {:?}",
            metrics.completed.load(Ordering::Relaxed),
            metrics.mean_latency(),
            metrics.latency_quantile(0.99),
        );
        sim::stop();
    });
    simulation.run().expect("simulation completes");
}
