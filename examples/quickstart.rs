//! Quickstart: a replicated key-value store on two Heron partitions.
//!
//! Demonstrates the full stack — deterministic simulation, RDMA fabric,
//! atomic multicast ordering, and Heron's coordinated execution — with a
//! minimal application: string keys hashed across two partitions, `PUT`
//! and `GET` requests, plus a multi-partition `SWAP` that exercises the
//! Phase 2/4 coordination and one-sided remote reads.
//!
//! Run with: `cargo run --release --example quickstart`

use bytes::Bytes;
use heron::core::{
    Execution, HeronCluster, HeronConfig, LocalReader, ObjectId, PartitionId, Placement, ReadSet,
    StateMachine,
};
use heron::rdma::{Fabric, LatencyModel};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

const PARTITIONS: u16 = 2;
const KEYS: &[&str] = &["apple", "banana", "cherry", "dates"];

fn key_oid(key: &str) -> ObjectId {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    ObjectId(h.finish() >> 1)
}

fn key_partition(key: &str) -> PartitionId {
    PartitionId((key_oid(key).0 % PARTITIONS as u64) as u16)
}

/// Requests: `P <key> <value>`, `G <key>`, `S <key1> <key2>` (swap).
struct Kv;

fn fields(req: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(req)
        .split_whitespace()
        .map(str::to_string)
        .collect()
}

impl StateMachine for Kv {
    fn placement(&self, oid: ObjectId) -> Placement {
        Placement::Partition(PartitionId((oid.0 % PARTITIONS as u64) as u16))
    }

    fn destinations(&self, req: &[u8]) -> Vec<PartitionId> {
        let f = fields(req);
        let mut d: Vec<PartitionId> = match f[0].as_str() {
            "S" => vec![key_partition(&f[1]), key_partition(&f[2])],
            _ => vec![key_partition(&f[1])],
        };
        d.sort_unstable();
        d.dedup();
        d
    }

    fn read_set(&self, req: &[u8]) -> Vec<ObjectId> {
        let f = fields(req);
        match f[0].as_str() {
            "S" => vec![key_oid(&f[1]), key_oid(&f[2])],
            "G" => vec![key_oid(&f[1])],
            _ => vec![],
        }
    }

    fn execute(
        &self,
        partition: PartitionId,
        req: &[u8],
        reads: &ReadSet,
        _local: &dyn LocalReader,
    ) -> Execution {
        let f = fields(req);
        let compute = Duration::from_micros(1);
        match f[0].as_str() {
            "P" => {
                let oid = key_oid(&f[1]);
                let mine = self.placement(oid) == Placement::Partition(partition);
                Execution {
                    writes: if mine {
                        vec![(oid, Bytes::from(f[2].clone().into_bytes()))]
                    } else {
                        vec![]
                    },
                    response: Bytes::from_static(b"ok"),
                    compute,
                }
            }
            "G" => Execution {
                writes: vec![],
                response: reads.get(key_oid(&f[1])).cloned().unwrap_or_default(),
                compute,
            },
            "S" => {
                // Swap the two values: each partition writes its own key
                // with the other's value — a true multi-partition request.
                let (a, b) = (key_oid(&f[1]), key_oid(&f[2]));
                let (va, vb) = (
                    reads.get(a).cloned().unwrap_or_default(),
                    reads.get(b).cloned().unwrap_or_default(),
                );
                let mut writes = Vec::new();
                if self.placement(a) == Placement::Partition(partition) {
                    writes.push((a, vb.clone()));
                }
                if self.placement(b) == Placement::Partition(partition) {
                    writes.push((b, va.clone()));
                }
                Execution {
                    writes,
                    response: Bytes::from_static(b"swapped"),
                    compute,
                }
            }
            _ => Execution::default(),
        }
    }

    fn bootstrap(&self, partition: PartitionId) -> Vec<(ObjectId, Bytes)> {
        KEYS.iter()
            .filter(|k| key_partition(k) == partition)
            .map(|k| (key_oid(k), Bytes::from_static(b"-")))
            .collect()
    }
}

fn main() {
    let simulation = sim::Simulation::new(2024);
    let fabric = Fabric::new(LatencyModel::connectx4());
    let cluster = HeronCluster::build(
        &fabric,
        HeronConfig::new(PARTITIONS as usize, 3),
        Arc::new(Kv),
    );
    cluster.spawn(&simulation);

    let mut client = cluster.client("quickstart");
    let metrics = cluster.metrics();
    simulation.spawn("client", move || {
        let exec = |c: &mut heron::core::HeronClient, s: &str| {
            let t0 = sim::now();
            let resp = c.execute(s.as_bytes());
            println!(
                "[{:>9}] {:24} -> {:<10} latency {:?}",
                sim::now().to_string(),
                s,
                String::from_utf8_lossy(&resp),
                sim::now() - t0,
            );
            resp
        };
        // Pick two keys on different partitions so the swap is a genuine
        // multi-partition request.
        let a = *KEYS.first().expect("keys");
        let b = *KEYS
            .iter()
            .find(|k| key_partition(k) != key_partition(a))
            .expect("a key on the other partition");
        println!(
            "swapping across partitions: {a} ({}) <-> {b} ({})",
            key_partition(a),
            key_partition(b)
        );
        exec(&mut client, &format!("P {a} red"));
        exec(&mut client, &format!("P {b} yellow"));
        let r = exec(&mut client, &format!("G {a}"));
        assert_eq!(&r[..], b"red");
        exec(&mut client, &format!("S {a} {b}"));
        let r = exec(&mut client, &format!("G {a}"));
        assert_eq!(&r[..], b"yellow", "swap must be atomic and visible");
        let r = exec(&mut client, &format!("G {b}"));
        assert_eq!(&r[..], b"red");
        sim::stop();
    });
    simulation.run().expect("simulation completes");
    println!(
        "\ncompleted {} requests, mean latency {:?}",
        metrics.completed.load(std::sync::atomic::Ordering::Relaxed),
        metrics.mean_latency(),
    );
}
