//! Crash a replica mid-workload and watch Heron's state-transfer protocol
//! bring it back (paper §III, Algorithm 3 + §V-E).
//!
//! One replica of partition 0 is crashed while TPC-C traffic continues —
//! majorities keep the system available. After recovery, the replica
//! detects that the fast majority moved on (its remote reads find only
//! versions newer than its current request), raises a state-transfer
//! request in its group's `statesync` memory, and a peer streams the
//! missing state back in 32 KiB RDMA writes.
//!
//! Run with: `cargo run --release --example lagger_recovery`

use heron::core::{HeronCluster, HeronConfig, PartitionId};
use heron::rdma::{Fabric, LatencyModel};
use heron::tpcc::{ids, TpccApp, TpccScale};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const WAREHOUSES: u16 = 2;

fn main() {
    let simulation = sim::Simulation::new(99);
    let fabric = Fabric::new(LatencyModel::connectx4());
    let app = Arc::new(TpccApp::new(TpccScale::small(), WAREHOUSES));
    let cluster = HeronCluster::build(
        &fabric,
        HeronConfig::new(WAREHOUSES as usize, 3),
        app.clone(),
    );
    cluster.spawn(&simulation);

    let victim = (PartitionId(0), 2usize);
    let c2 = cluster.clone();
    let metrics = cluster.metrics();
    let mut client = cluster.client("driver");
    simulation.spawn("driver", move || {
        let mut gen = app.generator(1);
        let run =
            |client: &mut heron::core::HeronClient, gen: &mut heron::tpcc::TpccGen, n: u32| {
                for i in 0..n {
                    let home = (i % WAREHOUSES as u32 + 1) as u16;
                    client.execute(&gen.next(home).encode());
                }
            };

        println!("[{}] phase 1: healthy cluster, 50 transactions", sim::now());
        run(&mut client, &mut gen, 50);

        println!("[{}] crashing replica p0/r2", sim::now());
        c2.crash_replica(victim.0, victim.1);
        run(&mut client, &mut gen, 150);
        println!(
            "[{}] 150 transactions completed while p0/r2 was down (majority quorums)",
            sim::now()
        );

        println!("[{}] recovering replica p0/r2", sim::now());
        c2.recover_replica(victim.0, victim.1);
        run(&mut client, &mut gen, 150);
        sim::sleep(Duration::from_millis(100));

        if std::env::var("HERON_DBG").is_ok() {
            for r in [0usize, 1, 2] {
                let tr = c2.exec_trace(PartitionId(0), r);
                let execed: Vec<u64> = tr
                    .iter()
                    .filter(|(_, k)| *k == 'e')
                    .map(|(t, _)| *t)
                    .collect();
                let skipped = tr.iter().filter(|(_, k)| *k == 's').count();
                let transfers: Vec<u64> = tr
                    .iter()
                    .filter(|(_, k)| *k == 't')
                    .map(|(t, _)| *t)
                    .collect();
                println!(
                    "r{r}: {} executed, {skipped} skipped, transfers at {:?}",
                    execed.len(),
                    transfers
                );
            }
            let t1: std::collections::HashSet<u64> = c2
                .exec_trace(PartitionId(0), 1)
                .iter()
                .filter(|(_, k)| *k == 'e')
                .map(|(t, _)| *t)
                .collect();
            let t0x: std::collections::HashSet<u64> = c2
                .exec_trace(PartitionId(0), 0)
                .iter()
                .filter(|(_, k)| *k == 'e')
                .map(|(t, _)| *t)
                .collect();
            let d01: Vec<_> = t1.difference(&t0x).collect();
            println!("r1 executed-but-not-r0: {} {:?}", d01.len(), d01);
            let t0: std::collections::HashSet<u64> = c2
                .exec_trace(PartitionId(0), 0)
                .iter()
                .filter(|(_, k)| *k == 'e')
                .map(|(t, _)| *t)
                .collect();
            let t2v: Vec<u64> = c2
                .exec_trace(PartitionId(0), 2)
                .iter()
                .filter(|(_, k)| *k == 'e')
                .map(|(t, _)| *t)
                .collect();
            let t2: std::collections::HashSet<u64> = t2v.iter().copied().collect();
            let extra: Vec<_> = t2.difference(&t0).collect();
            let missing: Vec<_> = t0.difference(&t2).collect();
            println!(
                "r2 executed-but-not-r0: {} {:?}",
                extra.len(),
                extra.iter().take(5).collect::<Vec<_>>()
            );
            println!(
                "r0 executed-but-not-r2: {} {:?}",
                missing.len(),
                missing.iter().take(5).collect::<Vec<_>>()
            );
            // duplicates within r2?
            let mut seen = std::collections::HashSet::new();
            let dups: Vec<u64> = t2v.iter().filter(|t| !seen.insert(**t)).copied().collect();
            println!("r2 duplicate executions: {:?}", dups.len());
        }
        // Verify convergence: the recovered replica matches its peers.
        let scale = TpccScale::small();
        let mut checked = 0;
        for d in 1..=scale.districts {
            let expect = c2.peek(PartitionId(0), 0, ids::district(1, d)).unwrap();
            assert_eq!(
                c2.peek(PartitionId(0), 2, ids::district(1, d)).unwrap(),
                expect,
                "district {d} diverged on the recovered replica"
            );
            checked += 1;
        }
        for i in 1..=scale.items {
            let expect = c2.peek(PartitionId(0), 0, ids::stock(1, i)).unwrap();
            assert_eq!(
                c2.peek(PartitionId(0), 2, ids::stock(1, i)).unwrap(),
                expect,
                "stock {i} diverged on the recovered replica"
            );
            checked += 1;
        }
        println!(
            "[{}] recovered replica verified identical on {checked} rows",
            sim::now()
        );
        let transfers = metrics.transfers.lock();
        println!(
            "state transfers: {} started, {} completed",
            metrics.transfers_started.load(Ordering::Relaxed),
            transfers.len(),
        );
        for (i, t) in transfers.iter().enumerate() {
            println!(
                "  transfer #{i}: {:>8} bytes ({} native) in {:?}",
                t.bytes,
                t.native_bytes,
                Duration::from_nanos(t.duration_ns)
            );
        }
        assert!(
            metrics.transfers_started.load(Ordering::Relaxed) >= 1,
            "recovery must exercise the state-transfer protocol"
        );
        sim::stop();
    });
    simulation.run().expect("simulation completes");
    println!("\nrecovery demo finished OK");
}
