//! **Heron** — scalable state machine replication on shared memory.
//!
//! A comprehensive Rust reproduction of *"Heron: Scalable State Machine
//! Replication on Shared Memory"* (Eslahi-Kelorazi, Le, Pedone — DSN
//! 2023): a partitioned SMR system that scales throughput with the number
//! of partitions and coordinates linearizable multi-partition execution
//! over one-sided RDMA in microseconds.
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `heron-core` | Heron itself: dual-versioned store, Phase 2/4 coordination, execution engine, state transfer, clients |
//! | [`multicast`] | `amcast` | RDMA-based genuine atomic multicast (RamCast-style) |
//! | [`rdma`] | `rdma-sim` | the simulated RDMA fabric (one-sided verbs, RC queue pairs) |
//! | [`net`] | `netsim` | the simulated kernel/TCP network used by the baseline |
//! | [`simulator`] | `sim` | deterministic virtual-time simulation runtime |
//! | [`tpcc`] | `tpcc` | the TPC-C workload of the paper's evaluation |
//! | [`baseline`] | `dynastar` | the DynaStar message-passing baseline of Fig. 5 |
//!
//! See `examples/quickstart.rs` for a first program, `DESIGN.md` for the
//! architecture and the paper-to-code map, and `EXPERIMENTS.md` for the
//! reproduction of every table and figure.
//!
//! # Quick start
//!
//! ```
//! use heron::core::{HeronCluster, HeronConfig};
//! use heron::rdma::{Fabric, LatencyModel};
//! use heron::simulator::Simulation;
//! use heron::tpcc::{TpccApp, TpccScale};
//! use std::sync::Arc;
//!
//! let simulation = Simulation::new(7);
//! let fabric = Fabric::new(LatencyModel::connectx4());
//! let app = Arc::new(TpccApp::new(TpccScale::small(), 2));
//! let cluster = HeronCluster::build(&fabric, HeronConfig::new(2, 3), app.clone());
//! cluster.spawn(&simulation);
//!
//! let mut client = cluster.client("quick");
//! simulation.spawn("client", move || {
//!     let mut gen = app.generator(1);
//!     for _ in 0..5 {
//!         client.execute(&gen.next(1).encode());
//!     }
//!     sim::stop();
//! });
//! simulation.run().unwrap();
//! assert_eq!(cluster.metrics().completed.load(std::sync::atomic::Ordering::Relaxed), 5);
//! ```
#![forbid(unsafe_code)]

/// Heron core: the paper's contribution.
pub use heron_core as core;

/// RDMA-based atomic multicast (the ordering layer, paper §II-B).
pub use amcast as multicast;

/// Simulated RDMA fabric.
pub use rdma_sim as rdma;

/// Simulated message-passing network (baseline substrate).
pub use netsim as net;

/// Deterministic virtual-time simulator.
pub use sim as simulator;

/// TPC-C workload.
pub use tpcc;

/// DynaStar baseline.
pub use dynastar as baseline;
