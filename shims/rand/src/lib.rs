//! Offline shim for the `rand` crate.
//!
//! Implements the API subset the workspace uses — `RngCore`, `SeedableRng`,
//! `Rng::gen_range`/`gen_bool`, and `rngs::SmallRng` — with no registry
//! dependency. `SmallRng` is xoshiro256++ seeded through SplitMix64, the
//! same construction upstream `rand 0.8` uses on 64-bit targets, so
//! workload generation stays deterministic for a given seed.

/// Core random number generation trait.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seed from a single `u64` by expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        // 53 random mantissa bits, the standard uniform-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types that support uniform range sampling. Mirrors upstream's
/// trait structure (blanket `SampleRange` impls over one uniform trait) so
/// type inference behaves identically to `rand 0.8`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                (lo as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                (lo as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the algorithm
    /// upstream `rand 0.8` uses for `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1u8..=10);
            assert!((1..=10).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
