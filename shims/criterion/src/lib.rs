//! Offline shim for the `criterion` crate.
//!
//! Implements the criterion API surface the workspace's benches use —
//! `Criterion`, `BenchmarkGroup`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros —
//! as a simple wall-clock harness: warm up, take `sample_size` samples,
//! report the median time per iteration (and derived throughput when
//! requested). No statistical machinery, no HTML reports; the point is a
//! stable, dependency-free number on a machine with no registry access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Substring filter: `cargo bench -- <filter>` (skip flags).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let throughput = None;
        run_benchmark(self, name, throughput, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix (and optionally a
/// throughput annotation).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let throughput = self.throughput;
        run_benchmark(self.criterion, &full, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The shim always runs one
/// setup per routine invocation, which is exactly `PerIteration`
/// semantics and a safe upper bound for the others.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    target_time: Duration,
    /// Mean nanoseconds per iteration measured for one sample.
    sample_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Estimate cost, then size the sample to the target time.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.sample_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }

    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        // Time only the routine, never the setup.
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_time.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.sample_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn run_benchmark<F>(c: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &c.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let per_sample = c.measurement_time / c.sample_size as u32;
    // Warm-up: run samples until the warm-up budget is spent.
    let warm_deadline = Instant::now() + c.warm_up_time;
    let mut b = Bencher {
        target_time: per_sample.max(Duration::from_micros(100)),
        sample_ns: 0.0,
    };
    while Instant::now() < warm_deadline {
        f(&mut b);
    }
    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        f(&mut b);
        samples.push(b.sample_ns);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({} elem/s)", human_rate(n as f64 * 1e9 / median)),
        Throughput::Bytes(n) => format!(" ({}B/s)", human_rate(n as f64 * 1e9 / median)),
    });
    println!(
        "{name:<50} time: [{} {} {}]{}",
        human_time(lo),
        human_time(median),
        human_time(hi),
        rate.unwrap_or_default()
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Defines a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(3),
            warm_up_time: Duration::from_millis(1),
            filter: None,
        }
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = quick();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = quick();
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Elements(10));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
    }
}
