//! Offline shim for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro with `#![proptest_config(..)]`, integer
//! range and `any::<T>()` strategies, tuple strategies, `prop_map`, and
//! `prop::collection::vec`. Cases are generated from a deterministic
//! per-test seed (derived from the test name), so failures reproduce.
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generated inputs visible in the assertion message.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed derived from the test's name, so each test gets a stable,
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Execution configuration; only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` — the shim's `any::<T>()`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Size specification for collection strategies: an exact size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s whose elements come from `elem` and whose
        /// length is drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` test-definition macro. Each contained `#[test] fn`
/// runs `config.cases` generated cases (no shrinking on failure).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let v = prop::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = prop::collection::vec(0u8..=1, 7).generate(&mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: strategies bind, bodies run per case.
        #[test]
        fn macro_binds_arguments(
            a in 0u64..10,
            pair in (0u8..4, 1usize..3),
            v in prop::collection::vec(any::<u16>(), 1..4),
        ) {
            prop_assert!(a < 10);
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    proptest! {
        #[test]
        fn macro_works_without_config(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }
}
