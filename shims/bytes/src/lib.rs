//! Offline shim for the `bytes` crate: an immutable, cheaply-clonable
//! byte buffer. Implements the subset of the `bytes::Bytes` API this
//! workspace uses, plus a buffer pool tuned for the simulator's traffic
//! pattern: message payloads are built as `Vec<u8>`, wrapped in `Bytes`,
//! carried through mailboxes, read once, and dropped.
//!
//! Two representations back a [`Bytes`]:
//!
//! * `Shared` — a plain `Arc<[u8]>`, used for copies of borrowed slices;
//! * `Pooled` — an `Arc<Vec<u8>>`-like cell whose backing `Vec` returns to
//!   a global free list when the last handle drops. `From<Vec<u8>>` uses
//!   this arm, which makes it **zero-copy** (the old shim copied the whole
//!   vector into a fresh `Arc<[u8]>`) and keeps steady-state message
//!   traffic off the global allocator: buffers cycle send → recv → pool →
//!   next send.
//!
//! [`take_buf`] closes the loop for producers that build payloads
//! incrementally: it hands out a pooled (cleared, capacity-retaining)
//! `Vec<u8>` to fill and pass back through `Bytes::from`.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on pooled buffers; beyond this, dropped buffers free
/// normally so a burst cannot pin memory forever.
const POOL_CAP: usize = 256;

fn pool() -> &'static Mutex<Vec<Vec<u8>>> {
    static POOL: OnceLock<Mutex<Vec<Vec<u8>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// A recyclable buffer: the backing `Vec` goes back to the pool when the
/// last `Bytes` handle drops.
struct PooledBuf {
    data: Vec<u8>,
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if self.data.capacity() == 0 {
            return;
        }
        let buf = std::mem::take(&mut self.data);
        if let Ok(mut pool) = pool().lock() {
            if pool.len() < POOL_CAP {
                pool.push(buf);
            }
        }
    }
}

/// Pops a pooled buffer (cleared, capacity retained) or returns a fresh
/// empty `Vec`. Fill it and wrap it with `Bytes::from` to recycle it.
pub fn take_buf() -> Vec<u8> {
    let mut buf = pool()
        .lock()
        .ok()
        .and_then(|mut p| p.pop())
        .unwrap_or_default();
    buf.clear();
    buf
}

/// Number of buffers currently in the pool (test/diagnostic hook).
pub fn pool_len() -> usize {
    pool().lock().map(|p| p.len()).unwrap_or(0)
}

enum Repr {
    Shared(Arc<[u8]>),
    Pooled(Arc<PooledBuf>),
}

impl Clone for Repr {
    fn clone(&self) -> Self {
        match self {
            Repr::Shared(a) => Repr::Shared(Arc::clone(a)),
            Repr::Pooled(a) => Repr::Pooled(Arc::clone(a)),
        }
    }
}

/// Cheaply clonable contiguous immutable bytes.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(&[][..])),
        }
    }

    /// Buffer holding a copy of `data`. (Upstream borrows statics without
    /// copying; the copy here is semantically equivalent.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// Buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// Buffer holding a copy of `data` in a pooled (recyclable) buffer:
    /// the copy lands in a recycled allocation when one is available, and
    /// the buffer returns to the pool when the last handle drops.
    pub fn pooled_copy(data: &[u8]) -> Self {
        let mut buf = take_buf();
        buf.extend_from_slice(data);
        Bytes::from(buf)
    }

    fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Shared(a) => a,
            Repr::Pooled(a) => &a.data,
        }
    }

    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_bytes().is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }

    /// Sub-range copy, `[begin, end)`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::from(&self.as_bytes()[range])),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: takes ownership of the vector. The allocation is
    /// recycled through the pool when the last handle drops.
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Pooled(Arc::new(PooledBuf { data: v })),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v.as_bytes())),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_bytes() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_bytes() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_bytes() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.as_bytes();
        write!(f, "b\"")?;
        for &b in data.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if data.len() > 32 {
            write!(f, "..{} bytes", data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        drop(b);
        assert_eq!(c.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").as_ref(), b"hi");
    }

    #[test]
    fn slice_copies_range() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(b.slice(1..4).as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![7u8; 100];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr, "From<Vec<u8>> must not copy");
    }

    #[test]
    fn dropped_pooled_buffers_recycle() {
        // Use a distinctive capacity so we can recognize the buffer when
        // it comes back from the (global, test-shared) pool.
        let mut v = Vec::with_capacity(4096 + 123);
        v.extend_from_slice(b"payload");
        let b = Bytes::from(v);
        let c = b.clone();
        drop(b);
        drop(c); // last handle: buffer returns to the pool
        let reused = take_buf();
        assert!(reused.is_empty(), "pooled buffers come back cleared");
        drop(Bytes::from(reused));
    }

    #[test]
    fn pooled_copy_round_trips() {
        let b = Bytes::pooled_copy(b"abc");
        assert_eq!(b.as_ref(), b"abc");
        assert_eq!(b, Bytes::from(vec![b'a', b'b', b'c']));
    }
}
