//! Offline shim for the `bytes` crate: an immutable, cheaply-clonable
//! byte buffer backed by `Arc<[u8]>`. Implements the subset of the
//! `bytes::Bytes` API this workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable contiguous immutable bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Buffer holding a copy of `data`. (Upstream borrows statics without
    /// copying; the copy here is semantically equivalent.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Sub-range copy, `[begin, end)`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: Arc::from(&self.data[range]),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes {
            data: Arc::from(v.as_bytes()),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "..{} bytes", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        drop(b);
        assert_eq!(c.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").as_ref(), b"hi");
    }

    #[test]
    fn slice_copies_range() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(b.slice(1..4).as_ref(), &[1, 2, 3]);
    }
}
