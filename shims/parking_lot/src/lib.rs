//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of the parking_lot API it actually uses, implemented on
//! top of `std::sync`. Semantics match parking_lot where they differ from
//! std: locks are not poisoned by panics (a poisoned std lock is recovered
//! transparently), and guards are returned directly rather than inside a
//! `Result`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive (parking_lot-style: infallible `lock`,
/// no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so a
/// [`Condvar`] can temporarily take ownership during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// Condition variable operating on [`MutexGuard`]s (parking_lot-style
/// `wait(&mut guard)` signature).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a bounded wait: reports whether the wait hit its timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock (parking_lot-style: infallible `read`/`write`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: a panic while holding the lock must not
        // make later lock() calls panic.
        assert_eq!(*m.lock(), 1);
    }
}
